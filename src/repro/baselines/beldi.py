"""Beldi baseline: workflow logging via DynamoDB's linked DAAL (§7.2).

Beldi builds an atomic logging layer *inside* DynamoDB: every logged step
is a conditional put into a log table (the atomic test-and-append), plus an
update to the workflow's linked-DAAL structure — two DynamoDB round trips
per log append. That cost structure is exactly what the paper measures:
Beldi's Invoke does 5 log appends like BokiFlow's, but each append pays
multiple DynamoDB updates, giving 19 ms vs BokiFlow's 3.8 ms (Figure 11c).

The API surface mirrors :class:`repro.libs.bokiflow.env.WorkflowEnv` so the
movie/travel workloads run unchanged on either system.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.baselines.dynamodb import ConditionFailedError, DynamoDBClient
from repro.core.cluster import BokiCluster
from repro.faas import FunctionContext

LOG_TABLE = "beldi-log"
DAAL_TABLE = "beldi-daal"
EMPTY_HOLDER = ""


class BeldiEnv:
    """Per-invocation Beldi workflow handle."""

    def __init__(self, runtime: "BeldiRuntime", ctx: FunctionContext, workflow_id: str):
        self.runtime = runtime
        self.ctx = ctx
        self.workflow_id = workflow_id
        self.step = 0
        self.db = DynamoDBClient(runtime.cluster.net, ctx.node, runtime.db_service)
        self.fault_hook: Optional[Callable[[int], None]] = runtime.fault_hook

    def _pre_step(self) -> None:
        if self.fault_hook is not None:
            self.fault_hook(self.step)

    # ------------------------------------------------------------------
    # The linked-DAAL log append: 2 DynamoDB round trips
    # ------------------------------------------------------------------
    def _log_append(self, log_key: str, data: dict) -> Generator:
        """Atomic test-and-append into the log table. Returns
        ``(record_data, version)`` of the *first* record for the key."""
        # Round trip 1: bump the DAAL tail pointer; the returned counter is
        # this append's (potential) version.
        daal = yield from self.db.update(
            DAAL_TABLE, self.workflow_id, add_attrs={"tail": 1}
        )
        version = daal["tail"]
        # Round trip 2: conditional put — first writer wins.
        try:
            yield from self.db.put(
                LOG_TABLE,
                log_key,
                {"data": data, "version": version},
                condition=("absent",),
            )
            return data, version
        except ConditionFailedError:
            existing = yield from self.db.get(LOG_TABLE, log_key)
            return existing["data"], existing["version"]

    def _log_key(self, suffix: str = "") -> str:
        return f"{self.workflow_id}/{self.step}/{suffix}"

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------
    def read(self, table: str, key: Any) -> Generator:
        item = yield from self.db.get(table, key)
        return item.get("Value") if item is not None else None

    def write(self, table: str, key: Any, value: Any) -> Generator:
        self._pre_step()
        data, version = yield from self._log_append(
            self._log_key("w"), {"table": table, "key": key, "value": value}
        )
        yield from self._idempotent_db_write(data["table"], data["key"], data["value"], version)
        self.step += 1
        return version

    def cond_write(self, table: str, key: Any, value: Any, expected: Any) -> Generator:
        self._pre_step()
        current = yield from self.db.get(table, key)
        outcome = current is not None and current.get("Value") == expected
        data, version = yield from self._log_append(
            self._log_key("cw"),
            {"table": table, "key": key, "value": value, "outcome": outcome},
        )
        if data["outcome"]:
            yield from self._idempotent_db_write(data["table"], data["key"], data["value"], version)
        self.step += 1
        return data["outcome"]

    def _idempotent_db_write(self, table: str, key: Any, value: Any, version: int) -> Generator:
        try:
            yield from self.db.update(
                table,
                key,
                set_attrs={"Value": value, "Version": version},
                condition=("attr_lt_or_absent", "Version", version),
            )
        except ConditionFailedError:
            pass

    def invoke(self, callee: str, arg: Any = None) -> Generator:
        self._pre_step()
        callee_id = f"{self.workflow_id}/{self.step}"
        data, _ = yield from self._log_append(self._log_key("pre"), {"callee_id": callee_id})
        callee_id = data["callee_id"]
        retval = yield from self.ctx.invoke(callee, {"workflow_id": callee_id, "input": arg})
        data, _ = yield from self._log_append(self._log_key("post"), {"retval": retval})
        self.step += 1
        return data["retval"]

    def invoke_parallel(self, calls) -> Generator:
        """Fan-out with Beldi's logging: each branch pays its pre/post
        DAAL appends; branches run concurrently."""
        self._pre_step()
        step = self.step
        sim = self.runtime.cluster.env

        def branch(i: int, callee: str, arg: Any) -> Generator:
            callee_id = f"{self.workflow_id}/{step}.{i}"
            data, _ = yield from self._log_append(
                f"{self.workflow_id}/{step}.{i}/pre", {"callee_id": callee_id}
            )
            callee_id = data["callee_id"]
            retval = yield from self.ctx.invoke(
                callee, {"workflow_id": callee_id, "input": arg}
            )
            data, _ = yield from self._log_append(
                f"{self.workflow_id}/{step}.{i}/post", {"retval": retval}
            )
            return data["retval"]

        procs = [
            sim.process(branch(i, callee, arg), name=f"fanout-{i}")
            for i, (callee, arg) in enumerate(calls)
        ]
        results = []
        for proc in procs:
            results.append((yield proc))
        self.step += 1
        return results

    def raw_db_write(self, table: str, key: Any, value: Any) -> Generator:
        yield from self.db.update(table, key, set_attrs={"Value": value})

    # ------------------------------------------------------------------
    # Locks: DynamoDB conditional updates ("test-and-set" in the database)
    # ------------------------------------------------------------------
    def try_lock(self, key: Any, holder_id: str) -> Generator:
        lock_key = f"lock/{key!r}"
        try:
            yield from self.db.update(
                "beldi-locks",
                lock_key,
                set_attrs={"holder": holder_id},
                condition=("attr_eq", "holder", EMPTY_HOLDER),
            )
            return True
        except ConditionFailedError:
            pass
        try:
            yield from self.db.put(
                "beldi-locks", lock_key, {"holder": holder_id}, condition=("absent",)
            )
            return True
        except ConditionFailedError:
            return False

    def unlock(self, key: Any, holder_id: str) -> Generator:
        lock_key = f"lock/{key!r}"
        try:
            yield from self.db.update(
                "beldi-locks",
                lock_key,
                set_attrs={"holder": EMPTY_HOLDER},
                condition=("attr_eq", "holder", holder_id),
            )
        except ConditionFailedError:
            pass  # not ours (double release after re-execution)


class BeldiTxn:
    """Lock-based transactions, Beldi style (same interface as
    :class:`repro.libs.bokiflow.txn.WorkflowTxn`)."""

    MAX_LOCK_RETRIES = 3
    RETRY_BACKOFF = 0.002

    def __init__(self, env: BeldiEnv):
        self.env = env
        self.holder_id = f"{env.workflow_id}/txn@{env.step}"
        self._held: List[Any] = []
        self._writes: Dict[Tuple[str, Any], Any] = {}

    def acquire(self, keys: List[Tuple[str, Any]]) -> Generator:
        sim_env = self.env.runtime.cluster.env
        for table_key in sorted(set(keys), key=repr):
            ok = False
            for attempt in range(self.MAX_LOCK_RETRIES):
                ok = yield from self.env.try_lock(table_key, self.holder_id)
                if ok:
                    break
                yield sim_env.timeout(self.RETRY_BACKOFF * (attempt + 1))
            if not ok:
                yield from self._release_all()
                return False
            self._held.append(table_key)
        return True

    def read(self, table: str, key: Any) -> Generator:
        if (table, key) in self._writes:
            return self._writes[(table, key)]
        return (yield from self.env.read(table, key))

    def write(self, table: str, key: Any, value: Any) -> None:
        self._writes[(table, key)] = value

    def commit(self) -> Generator:
        for (table, key), value in self._writes.items():
            yield from self.env.write(table, key, value)
        yield from self._release_all()

    def abort(self) -> Generator:
        self._writes.clear()
        yield from self._release_all()

    def _release_all(self) -> Generator:
        for table_key in reversed(self._held):
            yield from self.env.unlock(table_key, self.holder_id)
        self._held = []


class BeldiRuntime:
    """Deploys Beldi workflow functions; mirrors BokiFlowRuntime."""

    env_class = BeldiEnv
    txn_class = BeldiTxn

    def __init__(self, cluster: BokiCluster, db_service: str = "dynamodb"):
        self.cluster = cluster
        self.db_service = db_service
        self._wf_ids = itertools.count(1)
        self.fault_hook: Optional[Callable[[int], None]] = None

    def new_workflow_id(self, prefix: str = "beldi") -> str:
        return f"{prefix}-{next(self._wf_ids)}"

    def register_workflow(self, name: str, body: Callable) -> None:
        def handler(ctx: FunctionContext, arg: dict) -> Generator:
            workflow_id = arg["workflow_id"]
            env = BeldiEnv(self, ctx, workflow_id)
            # Child-side protocol, 3 log appends (start / result / done),
            # matching Beldi's per-invoke logging cost.
            yield from env._log_append(f"{workflow_id}/start", {"op": "start"})
            existing = yield from env.db.get(LOG_TABLE, f"{workflow_id}/result")
            if existing is not None:
                return existing["data"]["retval"]
            retval = yield from body(env, arg.get("input"))
            data, _ = yield from env._log_append(f"{workflow_id}/result", {"retval": retval})
            yield from env._log_append(f"{workflow_id}/done", {"op": "done"})
            return data["retval"]

        self.cluster.register_function(name, handler)

    def start_workflow(
        self, name: str, arg: Any = None, book_id: int = 0, workflow_id: Optional[str] = None
    ) -> Generator:
        workflow_id = workflow_id or self.new_workflow_id()
        result = yield from self.cluster.invoke(
            name, {"workflow_id": workflow_id, "input": arg}, book_id=book_id
        )
        return result
