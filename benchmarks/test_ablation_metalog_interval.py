"""Ablation: the primary sequencer's metalog batching interval.

Not a paper table — DESIGN.md calls this out as the central latency/
throughput knob of Scalog-style ordering (§4.3): the primary appends the
global progress vector every ``metalog_interval``. Shorter intervals cut
append latency (records wait less to be ordered) at the cost of more
metalog entries and broadcasts; throughput is insensitive until the
interval dwarfs the replication RTT.
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    info,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.core import BokiConfig
from repro.workloads.microbench import append_only

INTERVALS = [0.1e-3, 0.3e-3, 1.0e-3, 3.0e-3]
CLIENTS = 32
DURATION = 0.2


def run_interval(interval):
    config = BokiConfig(metalog_interval=interval, progress_interval=min(interval, 0.3e-3))
    cluster = make_cluster(
        num_function_nodes=4, num_storage_nodes=4, config=config, workers_per_node=16
    )
    result = append_only(cluster, num_clients=CLIENTS, duration=DURATION)
    entries = sum(s.entries_appended for s in cluster.sequencer_nodes)
    return result, entries


def experiment():
    return {interval: run_interval(interval) for interval in INTERVALS}


@pytest.mark.benchmark(group="ablation-metalog")
def test_ablation_metalog_batching_interval(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for interval, (result, entries) in results.items():
        rows.append(
            [
                f"{interval * 1e3:.1f}ms",
                ms(result.median_latency()),
                ms(result.p99_latency()),
                f"{result.throughput / 1e3:.1f}K",
                str(entries),
            ]
        )
    print_table(
        "Ablation: metalog batching interval",
        ["interval", "append p50", "append p99", "t-put", "metalog entries"],
        rows,
    )

    metrics = {}
    for interval, (result, entries) in results.items():
        slug = f"i{interval * 1e6:.0f}us"
        metrics[f"{slug}.append_p50_ms"] = lat_ms(result.median_latency())
        metrics[f"{slug}.append_p99_ms"] = lat_ms(result.p99_latency())
        metrics[f"{slug}.throughput"] = throughput(result.throughput)
        metrics[f"{slug}.metalog_entries"] = info(float(entries))
    emit_artifact(
        "ablation_metalog_interval",
        metrics,
        title="Ablation: metalog batching interval",
        config={"intervals_s": INTERVALS, "clients": CLIENTS, "duration_s": DURATION},
    )

    # Longer batching -> strictly higher append latency.
    medians = [results[i][0].median_latency() for i in INTERVALS]
    assert medians == sorted(medians)
    # The batching interval dominates latency at the long end.
    assert results[INTERVALS[-1]][0].median_latency() > 3 * results[INTERVALS[0]][0].median_latency()
    # Fewer metalog entries with coarser batching.
    assert results[INTERVALS[-1]][1] < results[INTERVALS[0]][1]
