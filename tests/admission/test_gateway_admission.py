"""Unit tests: the gateway admission controller, node windows, and the
typed overload error contract.

Covers the four shed paths (concurrency limit, deadline, window-full,
CoDel queue-delay), the priority classes (batch sees only
``batch_share`` of the limit), the elasticity gating (shedding disarmed
while the cluster can still scale out), the backpressure feedback
(downstream overload -> multiplicative decrease), and the cause-chain
helpers that let sheds propagate through RPC relay layers.
"""

from types import SimpleNamespace

import pytest

from repro.admission import (
    BATCH,
    INTERACTIVE,
    AdaptiveLimiter,
    AdmissionController,
    NodeAdmission,
    Overloaded,
    is_overload,
    retry_after_hint,
)
from repro.sim import Environment
from repro.sim.network import RpcError

pytestmark = pytest.mark.admission


def make_controller(limit=4.0, **kwargs):
    env = Environment()
    limiter = AdaptiveLimiter(initial=limit, min_limit=1.0)
    return env, AdmissionController(env, limiter=limiter, **kwargs)


class TestConcurrencyLimit:
    def test_admits_below_the_limit(self):
        _, ctl = make_controller(limit=4.0)
        ctl.check(inflight=3)
        assert ctl.admitted[INTERACTIVE] == 1
        assert ctl.total_shed() == 0

    def test_sheds_at_the_limit_with_a_retry_after_hint(self):
        _, ctl = make_controller(limit=4.0)
        with pytest.raises(Overloaded) as info:
            ctl.check(inflight=4)
        exc = info.value
        assert exc.resource == "gateway"
        assert exc.reason == "concurrency-limit"
        # retry_after = est * (1 + over/limit) with over = inflight - limit.
        assert exc.retry_after == pytest.approx(0.010 * (1 + 0 / 4))
        with pytest.raises(Overloaded) as info:
            ctl.check(inflight=8)
        assert info.value.retry_after == pytest.approx(0.010 * (1 + 4 / 4))
        assert ctl.shed["concurrency-limit"] == 2

    def test_batch_sees_only_its_share_of_the_limit(self):
        _, ctl = make_controller(limit=10.0, batch_share=0.7)
        # inflight 7 = int(10 * 0.7): batch sheds, interactive still admits.
        with pytest.raises(Overloaded) as info:
            ctl.check(inflight=7, priority=BATCH)
        assert info.value.priority == BATCH
        ctl.check(inflight=7, priority=INTERACTIVE)
        assert ctl.shed_by_priority == {INTERACTIVE: 0, BATCH: 1}
        assert ctl.admitted == {INTERACTIVE: 1, BATCH: 0}

    def test_effective_limit_never_drops_below_one(self):
        _, ctl = make_controller(limit=1.0, batch_share=0.7)
        ctl.check(inflight=0, priority=BATCH)  # max(1, int(0.7)) == 1
        with pytest.raises(Overloaded):
            ctl.check(inflight=1, priority=BATCH)


class TestDeadlineRejection:
    def test_doomed_requests_shed_before_any_work(self):
        env, ctl = make_controller(limit=100.0)
        # Remaining deadline below the service estimate (default 10ms).
        with pytest.raises(Overloaded) as info:
            ctl.check(inflight=0, deadline=env.now + 0.005)
        assert info.value.reason == "deadline"
        assert info.value.retry_after == 0.0

    def test_sufficient_deadline_admits(self):
        env, ctl = make_controller(limit=100.0)
        ctl.check(inflight=0, deadline=env.now + 0.5)
        assert ctl.admitted[INTERACTIVE] == 1

    def test_deadline_shedding_stays_armed_while_scaling_out(self):
        env, ctl = make_controller(limit=4.0)
        ctl.cluster = SimpleNamespace(
            elastic=SimpleNamespace(reconfiguring=False,
                                    can_scale_out=lambda: True),
            monitor=None,
        )
        assert not ctl.armed()
        with pytest.raises(Overloaded) as info:
            ctl.check(inflight=0, deadline=env.now + 0.001)
        assert info.value.reason == "deadline"


class TestElasticityGating:
    def cluster(self, reconfiguring, can_grow):
        return SimpleNamespace(
            elastic=SimpleNamespace(reconfiguring=reconfiguring,
                                    can_scale_out=lambda: can_grow),
            monitor=None,
        )

    def test_armed_without_an_autoscaler(self):
        _, ctl = make_controller()
        assert ctl.armed()

    def test_disarmed_while_the_fleet_can_still_grow(self):
        _, ctl = make_controller(limit=4.0)
        ctl.cluster = self.cluster(reconfiguring=False, can_grow=True)
        assert not ctl.armed()
        ctl.check(inflight=1000)  # absorbed by queues, not shed
        assert ctl.total_shed() == 0

    def test_armed_at_max_nodes(self):
        _, ctl = make_controller(limit=4.0)
        ctl.cluster = self.cluster(reconfiguring=False, can_grow=False)
        assert ctl.armed()
        with pytest.raises(Overloaded):
            ctl.check(inflight=1000)

    def test_armed_mid_reconfiguration(self):
        _, ctl = make_controller(limit=4.0)
        ctl.cluster = self.cluster(reconfiguring=True, can_grow=True)
        assert ctl.armed()


class TestFeedback:
    def test_downstream_overload_is_multiplicative_decrease(self):
        _, ctl = make_controller(limit=100.0)
        ctl.on_downstream_overload()
        assert ctl.downstream_overloads == 1
        assert ctl.limiter.limit == 70

    def test_success_feeds_the_latency_ewma(self):
        _, ctl = make_controller(limit=10.0)
        ctl.on_success(0.020)
        assert ctl.limiter.ewma_latency == pytest.approx(0.020)


class TestNodeAdmission:
    def make(self, capacity=2, controller=None):
        env = Environment()
        node = NodeAdmission(env, "engine.func-0", capacity=capacity,
                             service_time=0.001, controller=controller)
        return env, node

    def test_window_full_sheds_with_queue_delay_hint(self):
        _, node = self.make(capacity=2)
        node.try_enter()
        node.try_enter()
        with pytest.raises(Overloaded) as info:
            node.try_enter()
        exc = info.value
        assert exc.resource == "engine.func-0"
        assert exc.reason == "window-full"
        assert exc.retry_after == pytest.approx(2 * 0.001)
        assert node.window.shed == 1
        node.exit()
        node.try_enter()  # capacity freed: admitted again
        assert node.window.admitted == 3

    def test_node_sheds_count_toward_controller_total(self):
        env, ctl = make_controller(limit=4.0)
        node = NodeAdmission(env, "storage.s-0", capacity=1,
                             service_time=0.001, controller=ctl)
        assert ctl.nodes == [node]
        node.try_enter()
        with pytest.raises(Overloaded):
            node.try_enter()
        assert ctl.total_shed() == 1

    def test_disarmed_node_admits_beyond_capacity(self):
        env, ctl = make_controller(limit=4.0)
        ctl.cluster = SimpleNamespace(
            elastic=SimpleNamespace(reconfiguring=False,
                                    can_scale_out=lambda: True),
            monitor=None,
        )
        node = NodeAdmission(env, "engine.func-1", capacity=1,
                             service_time=0.001, controller=ctl)
        node.try_enter()
        node.try_enter()  # window disarmed while the fleet can grow
        assert node.window.inflight == 2

    def test_snapshot_shape(self):
        _, node = self.make(capacity=8)
        node.try_enter()
        snap = node.snapshot()
        assert snap == {
            "resource": "engine.func-0", "capacity": 8, "inflight": 1,
            "peak": 1, "admitted": 1, "shed": 0, "codel_dropped": 0,
        }


class TestOverloadErrorContract:
    def test_is_overload_through_rpc_relay_layers(self):
        shed = Overloaded("storage.s-1", "window-full", retry_after=0.02)
        relayed = RpcError("faas.invoke", RpcError("engine.relay", shed))
        assert is_overload(relayed)
        assert not is_overload(RpcError("faas.invoke", ValueError("boom")))

    def test_retry_after_hint_innermost_wins(self):
        outer = Overloaded("gateway", "concurrency-limit", retry_after=0.1)
        outer.__cause__ = Overloaded("storage.s-1", "window-full",
                                     retry_after=0.4)
        assert retry_after_hint(outer) == pytest.approx(0.4)

    def test_retry_after_hint_none_without_a_shed(self):
        assert retry_after_hint(RpcError("m", ValueError())) is None

    def test_controller_snapshot_is_deterministic_and_sorted(self):
        env, ctl = make_controller(limit=4.0)
        NodeAdmission(env, "storage.s-1", capacity=4, service_time=0.001,
                      controller=ctl)
        NodeAdmission(env, "engine.func-0", capacity=4, service_time=0.001,
                      controller=ctl)
        ctl.check(inflight=0)
        snap = ctl.snapshot()
        assert set(snap) == {"limiter", "admitted", "shed",
                             "shed_by_priority", "downstream_overloads",
                             "nodes"}
        assert [n["resource"] for n in snap["nodes"]] == [
            "engine.func-0", "storage.s-1",
        ]
