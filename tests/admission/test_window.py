"""Unit tests: bounded inflight windows and CoDel queue-delay shedding.

Both are pure state machines driven by explicit times, so the CoDel
schedule (first drop after a full interval above target, then
``interval/sqrt(count)`` between drops) is asserted exactly.
"""

from math import sqrt

import pytest

from repro.admission import BoundedWindow, CoDelShedder

pytestmark = pytest.mark.admission


class TestBoundedWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedWindow(0)

    def test_enter_exit_tracks_inflight_and_peak(self):
        window = BoundedWindow(4)
        window.enter()
        window.enter()
        assert window.inflight == 2
        assert window.peak == 2
        window.exit()
        window.enter()
        assert window.inflight == 2
        assert window.peak == 2  # peak is a high-water mark
        assert window.admitted == 3

    def test_full_at_capacity(self):
        window = BoundedWindow(2)
        assert not window.full
        window.enter()
        window.enter()
        assert window.full
        window.exit()
        assert not window.full

    def test_unmatched_exit_raises(self):
        window = BoundedWindow(1)
        with pytest.raises(RuntimeError):
            window.exit()


class TestCoDelShedder:
    def test_parameters_must_be_positive(self):
        with pytest.raises(ValueError):
            CoDelShedder(target=0.0)
        with pytest.raises(ValueError):
            CoDelShedder(interval=-1.0)

    def test_below_target_never_drops(self):
        codel = CoDelShedder(target=0.010, interval=0.100)
        for i in range(100):
            assert not codel.should_drop(i * 0.001, 0.005)
        assert codel.dropped == 0

    def test_drop_only_after_a_sustained_interval_above_target(self):
        codel = CoDelShedder(target=0.010, interval=0.100)
        assert not codel.should_drop(0.0, 0.020)   # arms first_above
        assert not codel.should_drop(0.05, 0.020)  # interval not yet elapsed
        assert codel.should_drop(0.11, 0.020)      # one full interval above
        assert codel.dropped == 1

    def test_drop_rate_ramps_as_interval_over_sqrt_count(self):
        codel = CoDelShedder(target=0.010, interval=0.100)
        codel.should_drop(0.0, 0.020)
        assert codel.should_drop(0.10, 0.020)
        # After the first drop the gate reopens a full interval later...
        assert codel.drop_next == pytest.approx(0.10 + 0.100 / sqrt(1))
        assert not codel.should_drop(0.15, 0.020)  # too soon
        # ...and each subsequent drop shortens it by 1/sqrt(count).
        assert codel.should_drop(0.21, 0.020)
        assert codel.drop_next == pytest.approx(0.21 + 0.100 / sqrt(2))
        assert codel.should_drop(0.29, 0.020)
        assert codel.drop_next == pytest.approx(0.29 + 0.100 / sqrt(3))
        assert codel.dropped == 3

    def test_recovery_below_target_resets_the_controller(self):
        codel = CoDelShedder(target=0.010, interval=0.100)
        codel.should_drop(0.0, 0.020)
        assert codel.should_drop(0.10, 0.020)
        assert not codel.should_drop(0.20, 0.001)  # queue drained: reset
        assert codel.first_above is None
        assert codel.count == 0
        # A fresh excursion must again sustain a full interval first.
        assert not codel.should_drop(0.30, 0.020)
        assert not codel.should_drop(0.35, 0.020)
        assert codel.should_drop(0.41, 0.020)
