"""BokiQueue example: a sharded job queue between functions (§5.3).

Run:  python examples/job_queue.py

Serverless functions cannot open sockets to each other (§2.1); BokiQueue
gives them indirect communication through the shared log. Two producer
functions dispatch image-resize jobs onto a 2-shard queue (vCorfu-style
CSMR); two consumer functions drain their shards; the garbage collector
function then trims the consumed records (§5.5).
"""

from repro.core import BokiCluster
from repro.libs.bokiqueue import BokiQueue
from repro.libs.gc import gc_queue


def main():
    cluster = BokiCluster(num_function_nodes=4, num_storage_nodes=3)
    cluster.boot()
    env = cluster.env

    queue = BokiQueue(cluster.logbook(book_id=21), "resize-jobs", num_shards=2)
    done = []

    def producer(name, jobs):
        handle = queue.producer()
        for i in range(jobs):
            seqnum = yield from handle.push({"image": f"{name}-{i}.png", "size": "512x512"})
            print(f"[{env.now * 1e3:7.2f}ms] {name} pushed {name}-{i}.png (seq {seqnum:#x})")
            yield env.timeout(0.002)

    def consumer(shard):
        handle = queue.consumer(shard)
        while len(done) < 8:
            job = yield from handle.pop_wait(poll_interval=0.001, max_polls=200)
            if job is None:
                break
            print(f"[{env.now * 1e3:7.2f}ms] consumer-{shard} resized {job['image']}")
            done.append(job["image"])

    procs = [
        env.process(producer("cam-a", 4)),
        env.process(producer("cam-b", 4)),
        env.process(consumer(0)),
        env.process(consumer(1)),
    ]
    for proc in procs:
        env.run_until(proc, limit=60.0)

    print(f"\nall {len(done)} jobs processed exactly once: {sorted(done)}")
    assert len(done) == len(set(done)) == 8

    def collect_garbage():
        trimmed = yield from gc_queue(queue)
        return trimmed

    trimmed = cluster.drive(collect_garbage())
    print(f"GC trimmed consumed records up to: {[hex(t) if t else None for t in trimmed]}")


if __name__ == "__main__":
    main()
