"""FaaS runtime substrate (Nightcore substitute).

Boki is built on Nightcore, a FaaS runtime optimized for microservices
(§4.2): a gateway receives function requests and dispatches them to engine
processes on function nodes, which run the functions in containers over
low-latency message channels. This package reproduces that architecture on
the simulation substrate:

- :class:`~repro.faas.gateway.Gateway` — receives invocations, schedules
  them onto function nodes (round-robin or locality-aware).
- :class:`~repro.faas.worker.FunctionNode` — runs functions with a bounded
  worker pool, modelling per-container concurrency.
- :class:`~repro.faas.context.FunctionContext` — the per-invocation handle;
  carries ``baggage`` (e.g. Boki's metalog position) from parent to child
  invocations and merges it back on return, which is how LogBook read
  consistency crosses function boundaries (§4.4).
"""

from repro.faas.context import FunctionContext
from repro.faas.gateway import FunctionNotFoundError, Gateway
from repro.faas.scheduling import LocalityScheduler, enable_locality_scheduling
from repro.faas.worker import FunctionNode

__all__ = [
    "FunctionContext",
    "FunctionNode",
    "FunctionNotFoundError",
    "Gateway",
    "LocalityScheduler",
    "enable_locality_scheduling",
]
