"""Table 6: locality impact from LogBook engines (§7.5).

Paper: limiting the fraction of Retwis reads served by local LogBook
engines to 25/50/75/100% yields 0.77x/0.84x/0.93x/1.00x of maximum
throughput — remote engines cost, but the degradation is moderate.
"""

import pytest

from benchmarks._common import emit_artifact, make_cluster, print_table, run_once, throughput
from benchmarks._retwis_common import run_retwis_bokistore

FRACTIONS = [0.25, 0.5, 0.75, 1.0]
CLIENTS = 48
DURATION = 0.25
NUM_USERS = 60


def run_fraction(fraction):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=4,
        workers_per_node=24,
    )
    return run_retwis_bokistore(
        cluster,
        num_clients=CLIENTS,
        duration=DURATION,
        num_users=NUM_USERS,
        local_fraction=fraction,
    )


def experiment():
    return {fraction: run_fraction(fraction) for fraction in FRACTIONS}


@pytest.mark.benchmark(group="table6")
def test_table6_engine_locality(benchmark):
    results = run_once(benchmark, experiment)

    best = results[1.0].throughput
    rows = [
        ["Throughput (Op/s)", *(f"{results[f].throughput:,.0f}" for f in FRACTIONS)],
        ["Normalized", *(f"{results[f].throughput / best:.2f}x" for f in FRACTIONS)],
    ]
    print_table(
        "Table 6: throughput vs fraction of local reads",
        ["", *(f"{int(f * 100)}% local" for f in FRACTIONS)],
        rows,
    )

    emit_artifact(
        "table6_locality",
        {
            f"local{int(fraction * 100)}.throughput": throughput(
                results[fraction].throughput
            )
            for fraction in FRACTIONS
        },
        title="Table 6: LogBook engine read locality",
        config={
            "fractions": FRACTIONS, "clients": CLIENTS,
            "duration_s": DURATION, "num_users": NUM_USERS,
        },
    )

    # Claim 1: throughput increases monotonically with locality.
    tputs = [results[f].throughput for f in FRACTIONS]
    assert all(tputs[i] <= tputs[i + 1] * 1.03 for i in range(len(tputs) - 1))
    # Claim 2: the penalty at 25% locality is moderate (paper: 0.77x;
    # allow 0.5-0.95x).
    assert 0.5 < results[0.25].throughput / best < 0.97
