"""Multi-tenant session analytics: the ``repro.tenant`` flagship workload.

Models a social-analytics SaaS hosting many customer apps (tenants) on one
Boki deployment — the setting §3 designs log spaces for. Tenant sizes are
Zipfian (a few whale apps, a long tail) over a simulated population of
~1M users by default. Each tenant's users generate *sessions*:

- ``session.ingest`` — a session tick appends a burst of activity events
  to the user's session book (tagged by user), then reads its own tail
  back — the append->readable lag is the tenant's *freshness* sample,
  fed to the per-tenant freshness SLO windows.
- ``session.report`` — an analytics query: fans out child invocations
  (``session.scan``, inheriting the tenant label) that each replay a
  user's event log, then aggregates the counts.

Every tenant addresses the *same raw book ids and tags* — log-space
scoping is what keeps them isolated, and the workload asserts it: every
event is stamped with its writer's tenant, and any cross-tenant record
surfacing in a scan is counted as a leak (must stay zero).

The module also provides the noisy-neighbor setup used by the isolation
benchmark and chaos scenario: a small interactive *victim* tenant sharing
the cluster with a batch-flooding *aggressor*.

Determinism: all sampling comes from named cluster streams; tenant sizes
are analytic (no RNG), so a population is a pure function of its
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.workloads.harness import RunResult, ZipfianSampler, run_shaped_open_loop
from repro.sim.metrics import LatencyRecorder

#: Raw (pre-scoping) book id base for session books. Every tenant uses
#: the same raw ids — isolation comes from log spaces, not id hygiene.
SESSION_BOOK_BASE = 9000
#: Session books per tenant (users hash onto them).
SESSION_BOOKS = 4
#: Events appended per session tick.
EVENTS_PER_TICK = 2
#: Child scans fanned out per report query.
REPORT_FANOUT = 2
#: Fraction of requests that are analytics reports (rest are ingests).
REPORT_SHARE = 0.2


@dataclass
class TenantSpec:
    """One tenant of the population: size and QoS."""

    name: str
    users: int
    weight: float = 1.0
    rate: Optional[float] = None
    burst: float = 1.0
    pinned: bool = False


@dataclass
class TenantOutcome:
    """Per-tenant measurement of one run."""

    ok: int = 0
    errors: int = 0
    shed: int = 0
    latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("tenant")
    )
    #: Cross-tenant records observed by this tenant's scans — the
    #: isolation invariant is that this stays zero.
    leaks: int = 0

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ok": self.ok, "errors": self.errors, "shed": self.shed,
            "leaks": self.leaks,
        }
        if self.latencies.count:
            out["median_s"] = self.latencies.median()
            out["p99_s"] = self.latencies.p99()
        return out


def zipfian_tenant_sizes(num_tenants: int, total_users: int,
                         theta: float = 0.99) -> List[int]:
    """Analytic Zipfian split of ``total_users`` across ``num_tenants``
    (rank-1 tenant largest); sizes sum exactly to ``total_users``."""
    if num_tenants < 1 or total_users < num_tenants:
        raise ValueError("need >= 1 tenant and >= 1 user per tenant")
    weights = [1.0 / ((i + 1) ** theta) for i in range(num_tenants)]
    total_weight = sum(weights)
    sizes = [max(1, int(total_users * w / total_weight)) for w in weights]
    sizes[0] += total_users - sum(sizes)  # rounding drift -> the whale
    return sizes


def build_population(
    cluster,
    num_tenants: int = 8,
    total_users: int = 1_000_000,
    theta: float = 0.99,
    pin_top: int = 0,
    rate_caps: Optional[Dict[str, float]] = None,
) -> List[TenantSpec]:
    """Enable tenancy and register a Zipfian tenant population.

    Tenant ``app-0`` is the whale. QoS weights are proportional to the
    *square root* of population (big tenants get more share, but not
    linearly — the classic fair-share compromise); the top ``pin_top``
    tenants are pinned to dedicated engines. ``rate_caps`` optionally
    adds token-bucket limits per tenant name.
    """
    hub = cluster.enable_tenancy()
    sizes = zipfian_tenant_sizes(num_tenants, total_users, theta)
    specs: List[TenantSpec] = []
    base = sizes[-1] ** 0.5
    for i, users in enumerate(sizes):
        name = f"app-{i}"
        spec = TenantSpec(
            name=name,
            users=users,
            weight=round((users ** 0.5) / base, 6),
            rate=(rate_caps or {}).get(name),
            pinned=i < pin_top,
        )
        specs.append(spec)
        hub.registry.register(
            name, weight=spec.weight, rate=spec.rate,
            burst=spec.burst if spec.rate is None else max(spec.burst, 1.0),
            pinned=spec.pinned, users=spec.users,
        )
    return specs


# ----------------------------------------------------------------------
# The functions (deployed once, shared by every tenant)
# ----------------------------------------------------------------------
def _user_tag(user: int) -> int:
    # Raw tag: stays within the 64-bit raw space; scoping namespaces it.
    return 1 + (user % 1_000_003)


def _user_book(user: int) -> int:
    return SESSION_BOOK_BASE + (user % SESSION_BOOKS)


def register_functions(cluster) -> None:
    """Deploy ``session.ingest`` / ``session.report`` / ``session.scan``."""

    def ingest(ctx, arg) -> Generator:
        book = cluster.logbook_for(ctx)
        user = arg["user"]
        tag = _user_tag(user)
        t0 = cluster.env.now
        seqnum = None
        for k in range(arg.get("events", EVENTS_PER_TICK)):
            seqnum = yield from book.append(
                {"user": user, "k": k, "tenant": ctx.tenant or "default",
                 "t": round(t0, 9)},
                tags=[tag],
            )
        # Read our own tail back: append->readable round trip = the
        # tenant's freshness sample (read-your-writes makes it visible).
        record = yield from book.read_prev(tag=tag)
        lag = cluster.env.now - t0
        if cluster.tenancy is not None and ctx.tenant is not None:
            cluster.tenancy.observe_freshness(ctx.tenant, cluster.env.now, lag)
        return {"seqnum": seqnum, "visible": record is not None, "lag": lag}

    def scan(ctx, arg) -> Generator:
        book = cluster.logbook_for(ctx)
        records = yield from book.read_range(tag=_user_tag(arg["user"]))
        me = ctx.tenant or "default"
        leaks = sum(1 for r in records if r.data.get("tenant") != me)
        return {"events": len(records), "leaks": leaks}

    def report(ctx, arg) -> Generator:
        # Fan out per-user scans (children inherit the tenant label and
        # therefore the log space), then aggregate.
        events = 0
        leaks = 0
        for user in arg["users"][:REPORT_FANOUT]:
            sub = yield from ctx.invoke(
                "session.scan", {"user": user}, book_id=ctx.book_id
            )
            events += sub["events"]
            leaks += sub["leaks"]
        return {"events": events, "leaks": leaks, "users": len(arg["users"])}

    cluster.register_function("session.ingest", ingest)
    cluster.register_function("session.scan", scan)
    cluster.register_function("session.report", report)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
class SocialWorkload:
    """Open-loop request factory over a tenant population.

    Each request picks a tenant (weighted by population), a user within
    it (per-tenant Zipfian: every app has its own power users), and an
    op (ingest or report). Results accumulate per tenant.
    """

    def __init__(self, cluster, specs: List[TenantSpec],
                 stream: str = "social"):
        self.cluster = cluster
        self.specs = specs
        self.rng = cluster.streams.stream(stream)
        self._tenant_weights = [s.users for s in specs]
        self._total = sum(self._tenant_weights)
        self._user_samplers = {
            s.name: ZipfianSampler(min(s.users, 100_000)) for s in specs
        }
        self.outcomes: Dict[str, TenantOutcome] = {
            s.name: TenantOutcome() for s in specs
        }

    def _pick_tenant(self) -> TenantSpec:
        x = self.rng.random() * self._total
        acc = 0.0
        for spec, w in zip(self.specs, self._tenant_weights):
            acc += w
            if x < acc:
                return spec
        return self.specs[-1]

    def make_op(self, i: int) -> Generator:
        spec = self._pick_tenant()
        sampler = self._user_samplers[spec.name]
        user = sampler.sample(self.rng)
        if self.rng.random() < REPORT_SHARE:
            users = [user] + [
                sampler.sample(self.rng) for _ in range(REPORT_FANOUT - 1)
            ]
            fn, arg = "session.report", {"users": users}
        else:
            fn, arg = "session.ingest", {"user": user}
        return self._run_one(spec, fn, arg, _user_book(user))

    def _run_one(self, spec: TenantSpec, fn: str, arg: dict,
                 book_id: int) -> Generator:
        outcome = self.outcomes[spec.name]
        t0 = self.cluster.env.now
        try:
            result = yield from self.cluster.invoke(
                fn, arg, book_id=book_id, tenant=spec.name
            )
        except Exception as exc:  # noqa: BLE001 - classify, re-raise
            if getattr(exc, "is_overload", False) or _overload_in_chain(exc):
                outcome.shed += 1
            else:
                outcome.errors += 1
            raise
        outcome.ok += 1
        outcome.latencies.record(self.cluster.env.now - t0)
        outcome.leaks += result.get("leaks", 0) if isinstance(result, dict) else 0
        return result

    def per_tenant_summary(self) -> Dict[str, Dict[str, Any]]:
        return {name: o.summary() for name, o in sorted(self.outcomes.items())}

    def total_leaks(self) -> int:
        return sum(o.leaks for o in self.outcomes.values())


def _overload_in_chain(exc: BaseException) -> bool:
    from repro.admission.errors import is_overload

    return is_overload(exc)


def run_social(
    cluster,
    specs: List[TenantSpec],
    shape,
    duration: float,
    warmup: float = 0.0,
    max_in_flight: int = 10_000,
) -> "SocialRun":
    """Drive the population through a shaped open-loop run; returns the
    aggregate :class:`RunResult` plus per-tenant outcomes."""
    workload = SocialWorkload(cluster, specs)
    result = run_shaped_open_loop(
        cluster.env, workload.make_op, shape, duration,
        cluster.streams.stream("social-arrivals"),
        warmup=warmup, max_in_flight=max_in_flight,
    )
    return SocialRun(result=result, workload=workload)


@dataclass
class SocialRun:
    result: RunResult
    workload: SocialWorkload

    def per_tenant(self) -> Dict[str, Dict[str, Any]]:
        return self.workload.per_tenant_summary()

    def leaks(self) -> int:
        return self.workload.total_leaks()
