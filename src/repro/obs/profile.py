"""DES-kernel and per-node profiling.

:class:`KernelProfiler` hooks the kernel's event loop (one None-check
per event when detached) to record events processed, event-queue depth,
and events per virtual second. Attached nodes additionally integrate CPU
busy time (the area under the in-use curve of the node's
:class:`~repro.sim.sync.Resource`), giving per-node utilization over the
profiled window.

All measurements are pure bookkeeping on existing events — profiling
never schedules anything, so it cannot perturb the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.kernel import Environment
from repro.sim.node import Node


class NodeProfile:
    """Busy-time integral of one node's CPU resource."""

    __slots__ = ("name", "capacity", "busy_time", "_env", "_in_use", "_last")

    def __init__(self, env: Environment, node: Node):
        self.name = node.name
        self.capacity = node.cpu.capacity
        self.busy_time = 0.0  # cpu-seconds of virtual time
        self._env = env
        self._in_use = node.cpu.in_use
        self._last = env.now

    def on_change(self, in_use: int) -> None:
        now = self._env.now
        self.busy_time += self._in_use * (now - self._last)
        self._in_use = in_use
        self._last = now

    def settle(self) -> None:
        """Fold the time since the last change into the integral."""
        self.on_change(self._in_use)

    def utilization(self, since: float, now: Optional[float] = None) -> float:
        """Mean fraction of CPU capacity busy over [since, now]."""
        self.settle()
        end = self._env.now if now is None else now
        elapsed = end - since
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


class KernelProfiler:
    """Event-loop statistics plus per-node busy time.

    Parameters
    ----------
    env:
        The environment to profile; installs itself as ``env.profiler``.
    bucket:
        Width (virtual seconds) of the events-per-interval buckets.
    """

    def __init__(self, env: Environment, bucket: float = 1.0):
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        self.env = env
        self.bucket = bucket
        self.started_at = env.now
        self.events_processed = 0
        self.max_queue_depth = 0
        self.queue_depth_sum = 0
        #: int(now / bucket) -> events processed in that interval
        self.events_by_bucket: Dict[int, int] = {}
        self.nodes: Dict[str, NodeProfile] = {}
        env.profiler = self

    # ------------------------------------------------------------------
    # Kernel hook (called by Environment.run / step per event)
    # ------------------------------------------------------------------
    def on_event(self, now: float, queue_depth: int) -> None:
        self.events_processed += 1
        self.queue_depth_sum += queue_depth
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth
        key = int(now / self.bucket)
        self.events_by_bucket[key] = self.events_by_bucket.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Node attachment
    # ------------------------------------------------------------------
    def attach_node(self, node: Node) -> NodeProfile:
        profile = self.nodes.get(node.name)
        if profile is None:
            profile = self.nodes[node.name] = NodeProfile(self.env, node)
            node.cpu.monitor = profile.on_change
        return profile

    def detach(self) -> None:
        """Remove all hooks (kernel and nodes)."""
        if self.env.profiler is self:
            self.env.profiler = None
        for profile in self.nodes.values():
            profile.settle()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def mean_queue_depth(self) -> float:
        if not self.events_processed:
            return 0.0
        return self.queue_depth_sum / self.events_processed

    def events_per_virtual_second(self) -> float:
        elapsed = self.env.now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.events_processed / elapsed

    def busiest_nodes(self, top: int = 5) -> List[NodeProfile]:
        for profile in self.nodes.values():
            profile.settle()
        ranked = sorted(
            self.nodes.values(), key=lambda p: (-p.busy_time, p.name)
        )
        return ranked[:top]

    def summary(self) -> Dict[str, float]:
        return {
            "events_processed": self.events_processed,
            "events_per_vsecond": self.events_per_virtual_second(),
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
        }

    def report_lines(self) -> List[str]:
        elapsed = self.env.now - self.started_at
        lines = [
            f"kernel: {self.events_processed} events over {elapsed:.3f}s virtual "
            f"({self.events_per_virtual_second():,.0f} events/vsec)",
            f"event queue: mean depth {self.mean_queue_depth:.1f}, "
            f"max depth {self.max_queue_depth}",
        ]
        for profile in self.busiest_nodes(top=len(self.nodes)):
            util = profile.utilization(self.started_at)
            lines.append(
                f"  node {profile.name}: busy {profile.busy_time:.4f} cpu-s "
                f"({util:.1%} of {profile.capacity} cpus)"
            )
        return lines
