"""Table 2a: single-LogBook append throughput scaling (§7.1).

Paper: append-only workload, 1 KB records; throughput scales from 130.8
KOp/s (320 functions / 4 storage nodes) to 1157.8 KOp/s (2560 / 32), and
nmeta=5 performs like nmeta=3.

Scaled here: concurrency x storage-node pairs (40/2, 80/4, 160/8); the
claims checked are near-linear scaling with storage nodes and nmeta
insensitivity.
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    kops,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.core import BokiConfig
from repro.workloads.microbench import append_only

SWEEP = [(40, 4), (80, 8), (160, 16)]
DURATION = 0.15


def run_cell(num_clients: int, num_storage: int, nmeta: int) -> float:
    config = BokiConfig(nmeta=nmeta)
    cluster = make_cluster(
        num_function_nodes=4,
        num_storage_nodes=num_storage,
        num_sequencer_nodes=nmeta,
        config=config,
        workers_per_node=max(16, num_clients // 4),
    )
    result = append_only(cluster, num_clients=num_clients, duration=DURATION)
    return result


def experiment():
    table = {}
    for nmeta in (3, 5):
        for num_clients, num_storage in SWEEP:
            result = run_cell(num_clients, num_storage, nmeta)
            table[(nmeta, num_clients, num_storage)] = result
    return table


@pytest.mark.benchmark(group="table2a")
def test_table2a_append_throughput_scaling(benchmark):
    table = run_once(benchmark, experiment)

    rows = []
    for nmeta in (3, 5):
        row = [f"nmeta={nmeta}"]
        for num_clients, num_storage in SWEEP:
            row.append(kops(table[(nmeta, num_clients, num_storage)].throughput))
        rows.append(row)
    headers = ["", *(f"{c}fn/{s}S" for c, s in SWEEP)]
    print_table("Table 2a: single-LogBook append throughput", headers, rows)
    base = table[(3, *SWEEP[0])]
    print(
        f"latency at smallest scale: median {ms(base.median_latency())}, "
        f"p99 {ms(base.p99_latency())}"
    )

    metrics = {
        f"nmeta{nmeta}.c{clients}.s{storage}.throughput": throughput(
            table[(nmeta, clients, storage)].throughput
        )
        for nmeta in (3, 5)
        for clients, storage in SWEEP
    }
    metrics["smallest.append.p50_ms"] = lat_ms(base.median_latency())
    metrics["smallest.append.p99_ms"] = lat_ms(base.p99_latency())
    emit_artifact(
        "table2a_append_scaling",
        metrics,
        title="Table 2a: single-LogBook append throughput scaling",
        config={"sweep": [list(cell) for cell in SWEEP], "duration_s": DURATION},
    )

    # Claim 1: throughput scales with storage nodes (>=2.5x from 2S to 8S).
    t_small = table[(3, *SWEEP[0])].throughput
    t_large = table[(3, *SWEEP[-1])].throughput
    assert t_large > 2.5 * t_small

    # Claim 2: nmeta=5 performs like nmeta=3 (within 25%) at every scale.
    for cell in SWEEP:
        t3 = table[(3, *cell)].throughput
        t5 = table[(5, *cell)].throughput
        assert abs(t5 - t3) / t3 < 0.25

    # Claim 3: appends stay in the low-millisecond class.
    assert base.median_latency() < 5e-3
