"""Benchmark run artifacts, baselines, and the perf-regression gate.

Every ``benchmarks/test_*`` emits a :class:`BenchmarkArtifact`: the
benchmark id, its config/scale factors and seed, headline metrics
(latency percentiles, throughput, counter totals), and a critical-path
attribution block explaining where the virtual time went. Artifacts are
deterministic for a given seed (no wall-clock timestamps, sorted keys),
so two same-seed runs produce byte-identical JSON.

Committed baselines live in ``bench/baselines/*.json``; the comparator
classifies each metric of a fresh run as improved / unchanged / regressed
against them using per-metric tolerance bands and the metric's "better"
direction. The CLI wires it together::

    python -m repro.obs bench run [--all] [--update-baselines]
    python -m repro.obs bench compare [--artifacts D] [--baselines D]
    python -m repro.obs bench report [PATH ...]

``compare`` exits non-zero when any metric regressed beyond tolerance —
CI runs it as a gate on a fast benchmark subset.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

SCHEMA = "repro.bench/1"

#: Default relative tolerance band. The DES is deterministic for a given
#: seed, so an unchanged tree matches its baseline exactly; the band
#: absorbs intentional-but-small perf drift from unrelated changes.
DEFAULT_TOLERANCE = 0.10

IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"
CHANGED = "changed"  # beyond tolerance, but the metric has no direction
ADDED = "added"
REMOVED = "removed"

#: Benchmarks fast enough for the CI regression gate (< ~60 s together).
FAST_SUBSET = (
    "benchmarks/test_table3_read_latency.py",
    "benchmarks/test_fig11c_primitives.py",
    "benchmarks/test_elasticity_autoscale.py",
    "benchmarks/test_overload_goodput.py",
    "benchmarks/test_tenant_isolation.py",
)

DEFAULT_ARTIFACT_DIR = "bench/artifacts"
DEFAULT_BASELINE_DIR = "bench/baselines"
ARTIFACT_DIR_ENV = "REPRO_BENCH_DIR"


# ----------------------------------------------------------------------
# Metrics and the artifact schema
# ----------------------------------------------------------------------
def metric(
    value: float,
    unit: str = "",
    better: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """One headline metric: value, unit, improvement direction
    (``"lower"`` / ``"higher"`` / None), optional per-metric tolerance."""
    if better not in (None, "lower", "higher"):
        raise ValueError(f"bad direction {better!r}")
    out: Dict[str, Any] = {"value": float(value), "unit": unit, "better": better}
    if tolerance is not None:
        out["tolerance"] = float(tolerance)
    return out


def lat_ms(seconds: float, tolerance: Optional[float] = None) -> Dict[str, Any]:
    """A latency metric recorded in milliseconds (lower is better)."""
    return metric(seconds * 1e3, unit="ms", better="lower", tolerance=tolerance)


def throughput(per_second: float, tolerance: Optional[float] = None) -> Dict[str, Any]:
    """A rate metric in ops/second (higher is better)."""
    return metric(per_second, unit="op/s", better="higher", tolerance=tolerance)


def info(value: float, unit: str = "") -> Dict[str, Any]:
    """A directionless metric (counts, ratios) — reported, never gated."""
    return metric(value, unit=unit, better=None)


def wall_block(duration_s: float, events: int) -> Dict[str, Any]:
    """The artifact's informational wall-clock block: how long the host
    took to simulate the run and at what kernel-event rate.

    Deliberately OUTSIDE ``metrics`` — wall time depends on the host, so
    it is never gated and is the one artifact block exempt from the
    same-seed byte-identity guarantee."""
    duration_s = max(float(duration_s), 0.0)
    return {
        "duration_s": round(duration_s, 3),
        "events": int(events),
        "events_per_s": (
            round(events / duration_s) if duration_s > 0 else None
        ),
    }


@dataclass
class BenchmarkArtifact:
    """One benchmark run's machine-readable result."""

    benchmark_id: str
    title: str = ""
    seed: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    critical_path: Optional[Dict[str, Any]] = None
    #: Informational host-side cost (:func:`wall_block`); None keeps the
    #: artifact fully deterministic (the byte-identity tests' mode).
    wall: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "benchmark_id": self.benchmark_id,
            "title": self.title,
            "seed": self.seed,
            "config": self.config,
            "metrics": self.metrics,
            "counters": self.counters,
            "critical_path": self.critical_path,
            "wall": self.wall,
        }

    def to_json(self) -> str:
        """Deterministic serialization: sorted keys, fixed separators, one
        trailing newline — byte-identical across same-seed runs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def validate_artifact(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` listing every schema violation in ``doc``."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise ValueError("artifact is not a JSON object")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not doc.get("benchmark_id") or not isinstance(doc.get("benchmark_id"), str):
        problems.append("benchmark_id missing or not a string")
    if not isinstance(doc.get("seed"), int):
        problems.append("seed missing or not an int")
    if not isinstance(doc.get("config"), dict):
        problems.append("config missing or not an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics missing or empty")
    else:
        for name, m in metrics.items():
            if not isinstance(m, dict) or "value" not in m:
                problems.append(f"metric {name!r} has no value")
                continue
            if not isinstance(m["value"], (int, float)):
                problems.append(f"metric {name!r} value is not a number")
            if m.get("better") not in (None, "lower", "higher"):
                problems.append(f"metric {name!r} has bad direction {m.get('better')!r}")
    if not isinstance(doc.get("counters"), dict):
        problems.append("counters missing or not an object")
    if "critical_path" not in doc:
        problems.append("critical_path block missing")
    else:
        cp = doc["critical_path"]
        if cp is not None:
            for key in ("traces", "total_s", "categories_s", "share"):
                if key not in cp:
                    problems.append(f"critical_path.{key} missing")
    # "wall" is optional (older artifacts predate it) and informational.
    wall = doc.get("wall")
    if wall is not None:
        if not isinstance(wall, dict):
            problems.append("wall must be null or an object")
        else:
            for key in ("duration_s", "events", "events_per_s"):
                if key not in wall:
                    problems.append(f"wall.{key} missing")
    if problems:
        raise ValueError("invalid artifact: " + "; ".join(problems))


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    validate_artifact(doc)
    return doc


class ArtifactWriter:
    """Writes artifacts as ``<dir>/<benchmark_id>.json`` (dir created)."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or os.environ.get(
            ARTIFACT_DIR_ENV, DEFAULT_ARTIFACT_DIR
        )

    def write(self, artifact: BenchmarkArtifact) -> str:
        doc = artifact.to_dict()
        validate_artifact(doc)
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"{artifact.benchmark_id}.json")
        with open(path, "w") as handle:
            handle.write(artifact.to_json())
        return path


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric's classification against its baseline."""

    name: str
    classification: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    rel_delta: Optional[float] = None
    tolerance: float = DEFAULT_TOLERANCE
    unit: str = ""

    def describe(self) -> str:
        if self.classification in (ADDED, REMOVED):
            value = self.current if self.classification == ADDED else self.baseline
            return f"{self.name}: {self.classification} ({value:g}{self.unit})"
        sign = "+" if self.rel_delta >= 0 else ""
        return (
            f"{self.name}: {self.classification} "
            f"({self.baseline:g} -> {self.current:g}{self.unit}, "
            f"{sign}{self.rel_delta:.1%}, tol {self.tolerance:.0%})"
        )


def classify_metric(
    name: str,
    baseline: Optional[Dict[str, Any]],
    current: Optional[Dict[str, Any]],
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> MetricDelta:
    """Classify one metric. Tolerance precedence: the baseline metric's
    own band, then the current one's, then ``default_tolerance``."""
    if baseline is None:
        return MetricDelta(name, ADDED, current=current["value"],
                           unit=current.get("unit", ""))
    if current is None:
        return MetricDelta(name, REMOVED, baseline=baseline["value"],
                           unit=baseline.get("unit", ""))
    tolerance = baseline.get("tolerance", current.get("tolerance", default_tolerance))
    base, cur = float(baseline["value"]), float(current["value"])
    if base == 0.0:
        rel = 0.0 if cur == 0.0 else float("inf")
    else:
        rel = (cur - base) / abs(base)
    better = baseline.get("better", current.get("better"))
    if abs(rel) <= tolerance:
        cls = UNCHANGED
    elif better is None:
        cls = CHANGED
    elif (rel < 0) == (better == "lower"):
        cls = IMPROVED
    else:
        cls = REGRESSED
    return MetricDelta(
        name, cls, baseline=base, current=cur, rel_delta=rel,
        tolerance=tolerance, unit=baseline.get("unit", ""),
    )


def compare_artifacts(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricDelta]:
    """Classify every metric present in either document (sorted by name)."""
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    names = sorted(set(base_metrics) | set(cur_metrics))
    return [
        classify_metric(
            name, base_metrics.get(name), cur_metrics.get(name), default_tolerance
        )
        for name in names
    ]


def compare_dirs(
    baseline_dir: str,
    artifact_dir: str,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, List[MetricDelta]]:
    """Compare every baseline that has a matching artifact; baselines with
    no artifact map to an empty list (the caller decides how hard to
    fail)."""
    out: Dict[str, List[MetricDelta]] = {}
    if not os.path.isdir(baseline_dir):
        raise FileNotFoundError(f"no baseline directory {baseline_dir!r}")
    for entry in sorted(os.listdir(baseline_dir)):
        if not entry.endswith(".json"):
            continue
        baseline = load_artifact(os.path.join(baseline_dir, entry))
        candidate = os.path.join(artifact_dir, entry)
        if not os.path.exists(candidate):
            out[baseline["benchmark_id"]] = []
            continue
        current = load_artifact(candidate)
        out[baseline["benchmark_id"]] = compare_artifacts(
            baseline, current, default_tolerance
        )
    return out


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def render_artifact(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of one artifact (metrics + attribution)."""
    lines = [f"=== {doc['benchmark_id']} — {doc.get('title') or 'benchmark'} ==="]
    if doc.get("config"):
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(doc["config"].items()))
        lines.append(f"config: {cfg} (seed {doc.get('seed', 0)})")
    header = f"{'metric':<44} {'value':>12} {'unit':<6} {'better'}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(doc["metrics"]):
        m = doc["metrics"][name]
        lines.append(
            f"{name:<44} {m['value']:>12.4g} {m.get('unit', ''):<6} "
            f"{m.get('better') or '-'}"
        )
    cp = doc.get("critical_path")
    if cp and cp.get("traces"):
        lines.append(
            f"critical path: {cp['traces']} traces, "
            f"{cp['total_s'] * 1e3:.3f} ms attributed"
        )
        ranked = sorted(
            cp["categories_s"].items(), key=lambda item: (-item[1], item[0])
        )
        for category, seconds in ranked:
            share = cp["share"].get(category, 0.0)
            lines.append(f"  {category:<10} {seconds * 1e3:>12.3f} ms  {share:>6.1%}")
    wall = doc.get("wall")
    if wall:
        rate = wall.get("events_per_s")
        lines.append(
            f"wall clock: {wall['duration_s']:.3f} s, "
            f"{wall['events']} kernel events"
            + (f" ({rate:,} events/s)" if rate else "")
        )
    return "\n".join(lines)


def render_comparison(results: Dict[str, List[MetricDelta]]) -> str:
    """Human-readable gate report over :func:`compare_dirs` output."""
    lines: List[str] = []
    for benchmark_id in sorted(results):
        deltas = results[benchmark_id]
        if not deltas:
            lines.append(f"{benchmark_id}: NO ARTIFACT (benchmark not run)")
            continue
        counts: Dict[str, int] = {}
        for delta in deltas:
            counts[delta.classification] = counts.get(delta.classification, 0) + 1
        summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines.append(f"{benchmark_id}: {summary}")
        for delta in deltas:
            if delta.classification != UNCHANGED:
                lines.append(f"  {delta.describe()}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI: python -m repro.obs bench run|compare|report
# ----------------------------------------------------------------------
def _repo_root() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))


def _cmd_run(args: argparse.Namespace) -> int:
    root = _repo_root()
    if args.benchmarks:
        targets = list(args.benchmarks)
    elif args.all:
        targets = ["benchmarks"]
    else:
        targets = list(FAST_SUBSET)
    artifact_dir = os.path.abspath(args.artifacts)
    env = dict(os.environ)
    env[ARTIFACT_DIR_ENV] = artifact_dir
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider"]
    cmd += [t if os.path.isabs(t) else os.path.join(root, t) for t in targets]
    if args.keyword:
        cmd += ["-k", args.keyword]
    print(f"[bench] running: {' '.join(cmd)}")
    print(f"[bench] artifacts -> {artifact_dir}")
    proc = subprocess.run(cmd, env=env, cwd=root)
    if proc.returncode != 0:
        return proc.returncode
    if args.update_baselines:
        os.makedirs(args.baselines, exist_ok=True)
        updated = 0
        for entry in sorted(os.listdir(artifact_dir)):
            if not entry.endswith(".json"):
                continue
            doc = load_artifact(os.path.join(artifact_dir, entry))
            with open(os.path.join(args.baselines, entry), "w") as handle:
                handle.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
            updated += 1
        print(f"[bench] refreshed {updated} baseline(s) in {args.baselines}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = compare_dirs(args.baselines, args.artifacts, args.tolerance)
    print(render_comparison(results))
    regressed = sum(
        1
        for deltas in results.values()
        for delta in deltas
        if delta.classification == REGRESSED
    )
    missing = sum(1 for deltas in results.values() if not deltas)
    if regressed:
        print(f"[bench] FAIL: {regressed} metric(s) regressed beyond tolerance")
        return 1
    if missing and args.strict:
        print(f"[bench] FAIL: {missing} baseline(s) without artifacts (--strict)")
        return 1
    print("[bench] OK: no regressions")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    paths = list(args.paths)
    if not paths:
        directory = args.artifacts
        if not os.path.isdir(directory):
            print(f"[bench] no artifact directory {directory!r}", file=sys.stderr)
            return 2
        paths = [
            os.path.join(directory, entry)
            for entry in sorted(os.listdir(directory))
            if entry.endswith(".json")
        ]
    if not paths:
        print("[bench] nothing to report", file=sys.stderr)
        return 2
    for i, path in enumerate(paths):
        if i:
            print()
        print(render_artifact(load_artifact(path)))
    return 0


def _cmd_monitor_report(args: argparse.Namespace) -> int:
    from repro.obs.alerts import render_flight_record, validate_flight_record

    paths = list(args.paths)
    if not paths:
        directory = args.records
        if not os.path.isdir(directory):
            print(f"[monitor] no flight-record directory {directory!r}",
                  file=sys.stderr)
            return 2
        paths = [
            os.path.join(directory, entry)
            for entry in sorted(os.listdir(directory))
            if entry.endswith(".json")
        ]
    if not paths:
        print("[monitor] nothing to report", file=sys.stderr)
        return 2
    bad = 0
    for i, path in enumerate(paths):
        if i:
            print()
        with open(path) as handle:
            doc = json.load(handle)
        problems = validate_flight_record(doc)
        if problems:
            bad += 1
            print(f"[monitor] INVALID {path}: " + "; ".join(problems))
            continue
        print(render_flight_record(doc))
    return 1 if bad else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Benchmark telemetry: run artifacts, attribution, regression gate.",
    )
    domains = parser.add_subparsers(dest="domain", required=True)
    bench = domains.add_parser("bench", help="benchmark artifact pipeline")
    sub = bench.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run benchmarks and emit artifacts")
    run.add_argument("benchmarks", nargs="*", help="pytest targets (default: fast subset)")
    run.add_argument("--all", action="store_true", help="run the full benchmarks/ tree")
    run.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR)
    run.add_argument("--baselines", default=DEFAULT_BASELINE_DIR)
    run.add_argument("-k", dest="keyword", default=None, help="pytest -k filter")
    run.add_argument(
        "--update-baselines", action="store_true",
        help="copy emitted artifacts into the baseline directory",
    )
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="gate artifacts against baselines")
    compare.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR)
    compare.add_argument("--baselines", default=DEFAULT_BASELINE_DIR)
    compare.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    compare.add_argument(
        "--strict", action="store_true",
        help="also fail when a baseline has no matching artifact",
    )
    compare.set_defaults(func=_cmd_compare)

    report = sub.add_parser("report", help="pretty-print artifacts")
    report.add_argument("paths", nargs="*", help="artifact files (default: all)")
    report.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR)
    report.set_defaults(func=_cmd_report)

    monitor = domains.add_parser(
        "monitor", help="online monitor flight records (repro.monitor/1)"
    )
    msub = monitor.add_subparsers(dest="command", required=True)
    mreport = msub.add_parser(
        "report", help="validate and pretty-print flight records"
    )
    mreport.add_argument(
        "paths", nargs="*", help="flight-record files (default: all in --records)"
    )
    mreport.add_argument("--records", default="bench/monitor",
                         help="flight-record directory")
    mreport.set_defaults(func=_cmd_monitor_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
