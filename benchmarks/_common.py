"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure from the paper's evaluation
(§7) at laptop scale: node counts, client counts, and durations are scaled
down (the exact factors are recorded in EXPERIMENTS.md), and all times are
*virtual* (simulated) seconds, so results are deterministic for a given
seed and independent of host speed. Absolute numbers therefore differ from
the paper; the assertions check the paper's qualitative claims — who wins,
by roughly what factor, where trends bend.

Run with: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.dynamodb import DynamoDBService
from repro.core import BokiCluster, BokiConfig
from repro.obs.bench import (
    ArtifactWriter,
    BenchmarkArtifact,
    info,
    lat_ms,
    metric,
    throughput,
    wall_block,
)
from repro.obs.critical_path import AttributionAggregate


def print_table(title: str, headers: Sequence[str], rows: List[Sequence[Any]]) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def kops(per_second: float) -> str:
    return f"{per_second / 1e3:.1f}K"


def make_cluster(
    num_function_nodes: int = 4,
    num_storage_nodes: int = 4,
    num_sequencer_nodes: int = 3,
    num_logs: int = 1,
    index_engines_per_log: Optional[int] = None,
    config: Optional[BokiConfig] = None,
    seed: int = 0,
    workers_per_node: int = 64,
    with_dynamodb: bool = False,
    obs: Optional[bool] = None,
) -> BokiCluster:
    """Boot a benchmark cluster, observability-enabled by default.

    Tracing never perturbs virtual time (see ``repro.obs``), so the
    numbers are identical either way; spans feed the critical-path
    attribution block of the benchmark's artifact. The previous cluster's
    spans are folded into the session aggregate here and released, so
    memory stays bounded at one cluster's traces. Opt out with
    ``obs=False`` or ``REPRO_BENCH_OBS=0``.
    """
    cluster = BokiCluster(
        num_function_nodes=num_function_nodes,
        num_storage_nodes=num_storage_nodes,
        num_sequencer_nodes=num_sequencer_nodes,
        num_logs=num_logs,
        index_engines_per_log=index_engines_per_log,
        config=config,
        seed=seed,
        workers_per_node=workers_per_node,
    )
    if obs is None:
        obs = os.environ.get("REPRO_BENCH_OBS", "1") != "0"
    if obs:
        cluster.enable_observability()
    if with_dynamodb:
        DynamoDBService(cluster.env, cluster.net, cluster.streams)
    cluster.boot()
    _harvest_last_cluster()
    _SESSION["last_cluster"] = cluster
    return cluster


def adopt_cluster(cluster) -> "BokiCluster":
    """Register a cluster built directly (not via :func:`make_cluster`)
    for artifact harvesting — benchmarks that need constructor knobs
    ``make_cluster`` does not expose (e.g. spare nodes for elasticity)
    still contribute counters and critical-path spans this way. Call it
    after ``boot()``; observability follows the same ``REPRO_BENCH_OBS``
    switch."""
    if cluster.obs is None and os.environ.get("REPRO_BENCH_OBS", "1") != "0":
        cluster.enable_observability()
    _harvest_last_cluster()
    _SESSION["last_cluster"] = cluster
    return cluster


def run_once(benchmark, fn):
    """Wrap a whole experiment as a single pytest-benchmark round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Benchmark artifacts (repro.obs.bench)
# ----------------------------------------------------------------------
#: Telemetry gathered while the current benchmark runs: critical-path
#: attribution over every traced cluster plus summed component counters.
_SESSION: Dict[str, Any] = {
    "attribution": AttributionAggregate(),
    "counters": {},
    "clusters": 0,
    "last_cluster": None,
    "wall_start": time.perf_counter(),
    "events": 0,
}


def reset_artifact_session() -> None:
    """Start telemetry afresh (called around each benchmark by conftest)."""
    _SESSION["attribution"] = AttributionAggregate()
    _SESSION["counters"] = {}
    _SESSION["clusters"] = 0
    _SESSION["last_cluster"] = None
    _SESSION["wall_start"] = time.perf_counter()
    _SESSION["events"] = 0


def _counter_key(name: str) -> Optional[str]:
    """Fold a per-node metric name into its cluster-wide aggregate key
    (``engine.func-0.cache.hits`` -> ``engine.cache.hits``); None for
    point-in-time values that make no sense summed across clusters."""
    parts = name.split(".")
    if parts[0] in ("engine", "storage", "sequencer") and len(parts) > 2:
        rest = [p for p in parts[2:] if not p.isdigit()]
        return ".".join([parts[0], *rest])
    if parts[0] == "net":
        return name
    return None


def _harvest_last_cluster() -> None:
    cluster = _SESSION.get("last_cluster")
    if cluster is None:
        return
    _SESSION["last_cluster"] = None
    _SESSION["clusters"] += 1
    _SESSION["events"] += cluster.env._eid
    counters = _SESSION["counters"]
    for name, value in cluster.metrics_snapshot().snapshot().items():
        if isinstance(value, dict):
            continue  # histogram summaries are per-cluster, not additive
        key = _counter_key(name)
        if key is not None:
            counters[key] = counters.get(key, 0) + value
    if cluster.obs is not None:
        tracer = cluster.obs.tracer
        _SESSION["attribution"].add_spans(tracer.spans)
        tracer.spans.clear()


def run_result_metrics(prefix: str, result) -> Dict[str, Dict[str, Any]]:
    """Headline metrics of a harness ``RunResult``: throughput + p50/p99."""
    out = {f"{prefix}.throughput": throughput(result.throughput)}
    if result.latencies.count:
        out[f"{prefix}.p50_ms"] = lat_ms(result.median_latency())
        out[f"{prefix}.p99_ms"] = lat_ms(result.p99_latency())
    return out


def recorder_metrics(prefix: str, recorder) -> Dict[str, Dict[str, Any]]:
    """p50/p99 latency metrics of a ``LatencyRecorder``."""
    summary = recorder.summary_dict()
    return {
        f"{prefix}.p50_ms": lat_ms(summary["p50"]),
        f"{prefix}.p99_ms": lat_ms(summary["p99"]),
    }


def emit_artifact(
    benchmark_id: str,
    metrics: Dict[str, Dict[str, Any]],
    title: str = "",
    config: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    out_dir: Optional[str] = None,
) -> str:
    """Write this benchmark's machine-readable artifact and return its path.

    ``metrics`` maps names to :func:`repro.obs.bench.metric` dicts (use the
    ``lat_ms`` / ``throughput`` / ``info`` helpers). Counter totals and the
    critical-path attribution block are filled in from every cluster the
    benchmark created via :func:`make_cluster`. The output directory is
    ``$REPRO_BENCH_DIR`` or ``bench/artifacts``.
    """
    _harvest_last_cluster()
    attribution = _SESSION["attribution"]
    counters = dict(sorted(_SESSION["counters"].items()))
    counters["clusters"] = _SESSION["clusters"]
    artifact = BenchmarkArtifact(
        benchmark_id=benchmark_id,
        title=title,
        seed=seed,
        config=config or {},
        metrics=metrics,
        counters=counters,
        critical_path=attribution.to_dict() if attribution.traces else None,
        wall=wall_block(
            time.perf_counter() - _SESSION["wall_start"], _SESSION["events"]
        ),
    )
    path = ArtifactWriter(out_dir).write(artifact)
    print(f"[bench] artifact written: {path}")
    return path


__all__ = [
    "adopt_cluster",
    "emit_artifact",
    "info",
    "kops",
    "lat_ms",
    "make_cluster",
    "metric",
    "ms",
    "print_table",
    "recorder_metrics",
    "reset_artifact_session",
    "run_once",
    "run_result_metrics",
    "throughput",
]
