"""Tests for BokiQueue: log-backed FIFO shards, CSMR (§5.3)."""

import pytest

from repro.libs.bokiqueue import BokiQueue, QueueConsumer, QueueProducer
from tests.libs.conftest import drive


def make_queue(cluster, name="q", num_shards=1, book_id=11):
    return BokiQueue(cluster.logbook(book_id), name, num_shards=num_shards)


class TestSingleShard:
    def test_push_pop_roundtrip(self, cluster):
        q = make_queue(cluster)

        def flow():
            producer = q.producer()
            consumer = q.consumer(0)
            yield from producer.push("hello")
            return (yield from consumer.pop())

        assert drive(cluster, flow()) == "hello"

    def test_fifo_order(self, cluster):
        q = make_queue(cluster)

        def flow():
            producer = q.producer()
            consumer = q.consumer(0)
            for i in range(5):
                yield from producer.push(i)
            out = []
            for _ in range(5):
                out.append((yield from consumer.pop()))
            return out

        assert drive(cluster, flow()) == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self, cluster):
        q = make_queue(cluster)

        def flow():
            consumer = q.consumer(0)
            return (yield from consumer.pop())

        assert drive(cluster, flow()) is None

    def test_pop_after_drain_returns_none(self, cluster):
        q = make_queue(cluster)

        def flow():
            producer = q.producer()
            consumer = q.consumer(0)
            yield from producer.push("only")
            first = yield from consumer.pop()
            second = yield from consumer.pop()
            return first, second

        assert drive(cluster, flow()) == ("only", None)

    def test_interleaved_push_pop(self, cluster):
        q = make_queue(cluster)

        def flow():
            producer = q.producer()
            consumer = q.consumer(0)
            yield from producer.push("a")
            a = yield from consumer.pop()
            yield from producer.push("b")
            yield from producer.push("c")
            b = yield from consumer.pop()
            c = yield from consumer.pop()
            return a, b, c

        assert drive(cluster, flow()) == ("a", "b", "c")

    def test_each_message_delivered_once(self, cluster):
        """Pops from the same shard never deliver a message twice, even
        issued concurrently (the log linearizes them)."""
        q = make_queue(cluster)
        popped = []

        def produce():
            producer = q.producer()
            for i in range(6):
                yield from producer.push(i)

        drive(cluster, produce())
        consumer = q.consumer(0)

        def pop_one():
            value = yield from consumer.pop()
            popped.append(value)

        procs = [cluster.env.process(pop_one()) for _ in range(6)]
        for proc in procs:
            cluster.env.run_until(proc, limit=300.0)
        assert sorted(popped) == [0, 1, 2, 3, 4, 5]

    def test_pop_wait_blocks_until_push(self, cluster):
        q = make_queue(cluster)
        got = []

        def consumer_flow():
            consumer = q.consumer(0)
            value = yield from consumer.pop_wait()
            got.append((value, cluster.env.now))

        def producer_flow():
            yield cluster.env.timeout(0.05)
            producer = q.producer()
            yield from producer.push("late")

        pc = cluster.env.process(consumer_flow())
        pp = cluster.env.process(producer_flow())
        cluster.env.run_until(pc, limit=300.0)
        assert got[0][0] == "late"
        assert got[0][1] >= 0.05


class TestSharding:
    def test_round_robin_across_shards(self, cluster):
        q = make_queue(cluster, num_shards=3)

        def flow():
            producer = q.producer()
            for i in range(6):
                yield from producer.push(i)
            out = {}
            for shard in range(3):
                consumer = q.consumer(shard)
                out[shard] = []
                while True:
                    value = yield from consumer.pop()
                    if value is None:
                        break
                    out[shard].append(value)
            return out

        result = drive(cluster, flow())
        assert result == {0: [0, 3], 1: [1, 4], 2: [2, 5]}

    def test_all_messages_consumed_once_across_shards(self, cluster):
        q = make_queue(cluster, num_shards=4)

        def flow():
            producer = q.producer()
            for i in range(20):
                yield from producer.push(i)
            seen = []
            for shard in range(4):
                consumer = q.consumer(shard)
                while True:
                    value = yield from consumer.pop()
                    if value is None:
                        break
                    seen.append(value)
            return sorted(seen)

        assert drive(cluster, flow()) == list(range(20))

    def test_shard_out_of_range(self, cluster):
        q = make_queue(cluster, num_shards=2)
        with pytest.raises(ValueError):
            q.consumer(2)

    def test_invalid_shard_count(self, cluster):
        with pytest.raises(ValueError):
            make_queue(cluster, num_shards=0)

    def test_queues_isolated_by_name(self, cluster):
        q1 = make_queue(cluster, name="q1")
        q2 = make_queue(cluster, name="q2")

        def flow():
            yield from q1.producer().push("for-q1")
            v2 = yield from q2.consumer(0).pop()
            v1 = yield from q1.consumer(0).pop()
            return v1, v2

        assert drive(cluster, flow()) == ("for-q1", None)


class TestAuxState:
    def test_replay_uses_cached_state(self, cluster):
        """After a pop caches shard state, the next pop replays only new
        records (state resumes from aux)."""
        q = make_queue(cluster)

        def flow():
            producer = q.producer()
            consumer = q.consumer(0)
            for i in range(10):
                yield from producer.push(i)
            first = yield from consumer.pop()
            second = yield from consumer.pop()
            return first, second

        assert drive(cluster, flow()) == (0, 1)
