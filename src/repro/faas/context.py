"""Per-invocation function context.

The context is the function's handle to the platform: it identifies the
invocation, carries the LogBook binding (``book_id``), and transports
*baggage* — small key/value state that children inherit from parents and
parents absorb back from children. Boki uses baggage to propagate each
function's metalog position so read-your-writes and monotonic reads hold
across function boundaries (§4.4, Figure 5).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

_call_ids = itertools.count(1)


def next_call_id() -> int:
    return next(_call_ids)


class FunctionContext:
    """Handle passed to every function invocation.

    Attributes
    ----------
    call_id:
        Unique id of this invocation.
    book_id:
        The LogBook this invocation is bound to (``None`` when the function
        does not use shared logs).
    baggage:
        Mutable dict inherited by child invocations and merged back by the
        registered merge functions when a child returns.
    tenant:
        The tenant this invocation runs on behalf of (``repro.tenant``);
        ``None`` when tenancy is not enabled. Children inherit it, so a
        whole call tree stays inside one tenant's log space.
    """

    #: Merge functions applied per baggage key when a child returns:
    #: key -> f(parent_value, child_value) -> merged value.
    #: Boki registers max() for the metalog position key.
    baggage_mergers: Dict[str, Callable[[Any, Any], Any]] = {}

    def __init__(
        self,
        node: Any,
        gateway_invoke: Callable,
        call_id: Optional[int] = None,
        book_id: Optional[int] = None,
        baggage: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        self.node = node
        self._gateway_invoke = gateway_invoke
        self.call_id = call_id if call_id is not None else next_call_id()
        self.book_id = book_id
        self.baggage: Dict[str, Any] = dict(baggage or {})
        self.parent_id = parent_id
        self.tenant = tenant
        #: Extension slot: Boki attaches the LogBook client here.
        self.services: Dict[str, Any] = {}

    @classmethod
    def register_merger(cls, key: str, merge: Callable[[Any, Any], Any]) -> None:
        cls.baggage_mergers[key] = merge

    def invoke(self, fn_name: str, arg: Any = None, book_id: Optional[int] = None) -> Generator:
        """Invoke a child function and wait for its result.

        The child inherits this context's baggage (so e.g. its LogBook view
        is at least as fresh as ours); on return, the child's baggage is
        merged back into ours per the registered mergers.
        """
        result, child_baggage = yield from self._gateway_invoke(
            src_node=self.node,
            fn_name=fn_name,
            arg=arg,
            book_id=book_id if book_id is not None else self.book_id,
            baggage=dict(self.baggage),
            parent_id=self.call_id,
            tenant=self.tenant,
        )
        self.absorb(child_baggage)
        return result

    def absorb(self, other_baggage: Dict[str, Any]) -> None:
        """Merge another context's baggage into ours (child return path)."""
        for key, value in other_baggage.items():
            if key in self.baggage and key in self.baggage_mergers:
                self.baggage[key] = self.baggage_mergers[key](self.baggage[key], value)
            else:
                self.baggage[key] = value

    def __repr__(self) -> str:
        return f"<FunctionContext call={self.call_id} book={self.book_id}>"
