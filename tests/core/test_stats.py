"""Tests for the cluster observability snapshot."""

import pytest

from repro.core import BokiCluster
from repro.core.stats import collect_stats


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=2, index_engines_per_log=2)
    c.boot()
    return c


def test_counts_reflect_activity(cluster):
    def flow():
        book = cluster.logbook(1)
        for i in range(5):
            yield from book.append({"i": i}, tags=[2])
        for _ in range(3):
            yield from book.read_next(tag=2, min_seqnum=0)

    cluster.drive(flow())
    stats = collect_stats(cluster)
    assert stats.total_appends() == 5
    assert stats.total_reads() >= 3
    assert stats.term_id == 1
    assert stats.reconfigurations == 0
    assert stats.messages_sent > 0


def test_storage_and_sequencer_stats(cluster):
    def flow():
        book = cluster.logbook(1)
        seqnum = yield from book.append("x", tags=[2])
        yield from book.trim(seqnum, tag=2)
        yield cluster.env.timeout(0.05)

    cluster.drive(flow())
    stats = collect_stats(cluster)
    assert stats.total_trimmed() > 0
    assert sum(s.entries_appended for s in stats.sequencers.values()) > 0


def test_cache_hit_rate_computed(cluster):
    def flow():
        book = cluster.logbook(1)
        seqnum = yield from book.append("x", tags=[2])
        yield from book.read_next(tag=2, min_seqnum=seqnum)
        yield from book.read_next(tag=2, min_seqnum=seqnum)

    cluster.drive(flow())
    stats = collect_stats(cluster)
    rates = [e.cache_hit_rate for e in stats.engines.values()]
    assert any(rate > 0 for rate in rates)


def test_summary_lines_render(cluster):
    def flow():
        book = cluster.logbook(1)
        yield from book.append("x")

    cluster.drive(flow())
    lines = collect_stats(cluster).summary_lines()
    assert any("appends=1" in line for line in lines)
    assert any(line.strip().startswith("engine") for line in lines)
    assert any(line.strip().startswith("storage") for line in lines)


def test_sealed_replicas_after_reconfig():
    c = BokiCluster(num_sequencer_nodes=6)
    c.boot()

    def flow():
        book = c.logbook(1)
        yield from book.append("x")
        yield from c.controller.reconfigure()

    c.drive(flow(), limit=120.0)
    stats = collect_stats(c)
    assert stats.reconfigurations == 1
    assert stats.term_id == 2
    assert sum(s.sealed_replicas for s in stats.sequencers.values()) >= 2
