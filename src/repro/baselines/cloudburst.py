"""Simulated Cloudburst: the stateful-FaaS KVS comparator (§7.3, Figure 13).

Cloudburst exports a put/get key-value interface backed by Anna, with
caches co-located on function nodes and *causal* consistency: gets can be
served from a possibly stale local cache; puts go to the backing store and
propagate to caches asynchronously. BokiStore is compared against it on
raw get/put throughput and latency; Cloudburst is faster per cache hit but
offers weaker guarantees and no transactions.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.baselines.latency import (
    CLOUDBURST_CACHE_HIT,
    CLOUDBURST_CACHE_MISS,
    CLOUDBURST_CONCURRENCY,
    CLOUDBURST_PUT,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource

#: How long after a put before remote caches observe the new value.
PROPAGATION_DELAY = 5e-3


class CloudburstService:
    """The backing Anna-style store plus per-function-node caches."""

    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str = "cloudburst"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=CLOUDBURST_CONCURRENCY))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=CLOUDBURST_CONCURRENCY)
        self.store: Dict[Any, Any] = {}
        #: cache_name -> {key: (value, valid_from_time)}
        self.caches: Dict[str, Dict[Any, Any]] = {}
        self.op_count = 0
        self.node.handle("cb.get", self._h_get)
        self.node.handle("cb.put", self._h_put)

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _h_get(self, payload: dict) -> Generator:
        cache = self.caches.setdefault(payload["cache"], {})
        if payload["key"] in cache:
            yield from self._service(CLOUDBURST_CACHE_HIT)
            return cache[payload["key"]]
        yield from self._service(CLOUDBURST_CACHE_MISS)
        value = self.store.get(payload["key"])
        cache[payload["key"]] = value
        return value

    def _h_put(self, payload: dict) -> Generator:
        yield from self._service(CLOUDBURST_PUT)
        key, value = payload["key"], payload["value"]
        self.store[key] = value
        # The writer's own cache sees the new value immediately (causal:
        # read-your-writes at the writing site); other caches converge
        # after the propagation delay.
        self.caches.setdefault(payload["cache"], {})[key] = value
        self.env.process(self._propagate(key, value, payload["cache"]), name="cb-propagate")
        return True

    def _propagate(self, key: Any, value: Any, origin_cache: str) -> Generator:
        yield self.env.timeout(PROPAGATION_DELAY)
        for cache_name, cache in self.caches.items():
            if cache_name != origin_cache and key in cache:
                cache[key] = value


class CloudburstClient:
    """Bound to a function node; the node name selects its cache."""

    def __init__(self, net: Network, node: Node, service_name: str = "cloudburst"):
        self.net = net
        self.node = node
        self.service_name = service_name

    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.service_name, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def get(self, key: Any) -> Generator:
        return (yield from self._call("cb.get", {"cache": self.node.name, "key": key}))

    def put(self, key: Any, value: Any) -> Generator:
        return (yield from self._call("cb.put", {"cache": self.node.name, "key": key, "value": value}))
