"""Online monitor verdicts across the full scenario catalog.

Three properties per committed scenario, all from the same pair of runs:

- the seed-0 verdict (monitors on) is byte-identical to its committed
  golden in ``bench/chaos/`` — the determinism guarantee CI relies on;
- the online monitors agree with the offline checkers on every guarantee
  both sides check (the incremental shadows are faithful);
- monitors observe, never perturb: the verdict minus its ``online``
  block is byte-identical with monitors on or off.
"""

import json
import os

import pytest

from repro.chaos.runner import run_scenario, validate_verdict, verdict_to_json
from repro.chaos.scenarios import SCENARIOS, all_scenarios

pytestmark = [pytest.mark.chaos, pytest.mark.monitor]

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "bench", "chaos")

#: Guarantees checked both offline (checkers.*) and online (monitor.*),
#: by the name shared between the two verdict blocks.
SHARED_CHECKS = ("metalog-consistency", "queue-delivery", "exactly-once-effects")

#: Checks only the online monitors make (no offline counterpart).
ONLINE_ONLY = ("read-freshness", "record-reconciliation")


@pytest.fixture(scope="module")
def verdicts():
    """One monitored + one unmonitored seed-0 run per scenario, shared by
    every test in the module (the sweep dominates the suite's runtime)."""
    docs = {}
    for name in all_scenarios():
        docs[name] = (
            run_scenario(name, seed=0, monitors=True),
            run_scenario(name, seed=0, monitors=False),
        )
    return docs


@pytest.mark.parametrize("name", all_scenarios())
def test_seed0_verdict_matches_committed_golden(name, verdicts):
    golden = os.path.join(GOLDEN_DIR, f"chaos_{name}_seed0.json")
    with open(golden) as handle:
        committed = handle.read()
    assert json.loads(committed)["passed"] is True
    assert verdict_to_json(verdicts[name][0]) == committed, (
        f"seed-0 verdict for {name} drifted from the committed golden; "
        f"regenerate with: python -m repro.chaos run all --seed 0"
    )


@pytest.mark.parametrize("name", all_scenarios())
def test_online_agrees_with_offline(name, verdicts):
    """Per shared guarantee, the online ok-flag equals the offline one;
    online-only checks are present; and the overall online verdict passes
    exactly when no online check found violations."""
    doc = verdicts[name][0]
    validate_verdict(doc)
    online = doc["online"]
    assert online["enabled"] is True
    assert online["events_seen"] > 0
    offline_ok = {c["name"]: not c["violations"] for c in doc["checks"]}
    online_ok = {c["name"]: c["ok"] for c in online["checks"]}
    for check in SHARED_CHECKS:
        if check in offline_ok:
            assert online_ok[check] == offline_ok[check], (
                f"{name}: online {check}={online_ok[check]} but offline "
                f"found {'no ' if offline_ok[check] else ''}violations"
            )
    for check in ONLINE_ONLY:
        assert check in online_ok, f"{name}: missing online check {check}"
    assert online["passed"] == all(online_ok.values())


@pytest.mark.parametrize("name", all_scenarios())
def test_monitors_do_not_perturb_the_verdict(name, verdicts):
    """Everything except the ``online`` block must be byte-identical with
    monitors on or off — checks, timeline, stats, recovery."""
    on, off = verdicts[name]
    assert off["online"] == {"enabled": False}
    stripped_on = {k: v for k, v in on.items() if k != "online"}
    stripped_off = {k: v for k, v in off.items() if k != "online"}
    assert verdict_to_json(stripped_on) == verdict_to_json(stripped_off)


def test_expected_violation_scenario_fails_online_too():
    """The one expect-violations scenario (unsafe retries double-apply
    effects) must be caught by the online exactly-once monitor as well."""
    name = "unsafe-flow-crash-retry"
    assert SCENARIOS[name].expect_violations
    doc = run_scenario(name, seed=0)
    online = doc["online"]
    assert online["passed"] is False
    failed = [c["name"] for c in online["checks"] if not c["ok"]]
    assert failed == ["exactly-once-effects"]
