"""Overlapping reconfigurations: typed rejection + the serialized queue.

Two drivers can now race the controller (the failure detector and the
autoscaler). A second ``reconfigure`` while one is executing must fail
fast with ``ReconfigurationInProgress`` — never interleave seal/install —
and ``reconfigure_serialized`` must instead queue and run after."""

import pytest

from repro.core.cluster import BokiCluster
from repro.core.controller import ReconfigurationInProgress


def _cluster():
    cluster = BokiCluster(num_function_nodes=2, num_storage_nodes=3,
                          num_sequencer_nodes=3, seed=3)
    cluster.boot()
    return cluster


def test_overlapping_reconfigure_raises_typed_error():
    cluster = _cluster()
    env = cluster.env
    controller = cluster.controller
    outcome = {}

    def first():
        outcome["first"] = yield from controller.reconfigure()

    def second():
        try:
            yield from controller.reconfigure()
        except ReconfigurationInProgress as exc:
            outcome["second"] = exc

    p1 = env.process(first())
    p2 = env.process(second())
    env.run_until(p1, limit=30)
    env.run_until(p2, limit=30)
    assert outcome["first"].term_id == 2
    assert isinstance(outcome["second"], ReconfigurationInProgress)
    assert controller.current_term.term_id == 2, "loser must not install a term"


def test_serialized_reconfigure_queues_behind_inflight():
    cluster = _cluster()
    env = cluster.env
    controller = cluster.controller
    terms = []

    def direct():
        term = yield from controller.reconfigure()
        terms.append(("direct", term.term_id))

    def queued(tag):
        term = yield from controller.reconfigure_serialized()
        terms.append((tag, term.term_id))

    env.process(direct())
    pa = env.process(queued("a"))
    pb = env.process(queued("b"))
    env.run_until(pa, limit=60)
    env.run_until(pb, limit=60)
    # One term per caller, FIFO: direct -> a -> b.
    assert terms == [("direct", 2), ("a", 3), ("b", 4)]
    assert controller.reconfig_count == 3


def test_serialized_reconfigure_runs_immediately_when_idle():
    cluster = _cluster()
    term = cluster.drive(cluster.controller.reconfigure_serialized())
    assert term.term_id == 2


def test_fleet_params_update_active_fleets():
    cluster = _cluster()
    controller = cluster.controller
    term = cluster.drive(controller.reconfigure(engine_names=["func-0"]))
    assert controller.active_engines == ["func-0"]
    assert controller.active_storage is None  # untouched
    for asg in term.logs.values():
        assert asg.shards == ["func-0"]
    # Failure-driven reconfigurations keep the narrowed fleet.
    term = cluster.drive(controller.reconfigure())
    for asg in term.logs.values():
        assert asg.shards == ["func-0"]


def test_minimal_movement_keeps_surviving_replicas():
    cluster = BokiCluster(num_function_nodes=2, num_storage_nodes=3,
                          num_spare_storage_nodes=2, seed=3)
    cluster.boot()
    controller = cluster.controller
    old = controller.current_term
    new = cluster.drive(controller.reconfigure(
        storage_names=[f"storage-{i}" for i in range(4)],
        minimal_movement=True,
    ))
    moved = kept = 0
    for log_id, asg in new.logs.items():
        for shard, replicas in asg.shard_storage.items():
            prior = set(old.logs[log_id].shard_storage[shard])
            for name in replicas:
                if name in prior:
                    kept += 1
                else:
                    moved += 1
    assert kept > moved, "minimal movement must keep most replicas in place"
