"""Liveness metrics: availability and recovery time from histories.

The safety checkers (``repro.chaos.checkers``) prove nothing bad
happened; this module measures whether anything *good* kept happening.
Two Jepsen-style liveness figures are computed from a recorded
:class:`~repro.chaos.history.History` and the fault injection time:

- **availability** — goodput during the fault window: the fraction of
  client operations invoked at or after the fault that completed ``ok``.
  A cluster that recovers by retrying through reconfiguration keeps this
  near 1.0; a cluster without recovery serves errors for the whole
  failure-detection + reconfiguration window.
- **RTO** (recovery time objective) — virtual time from fault injection
  to the first *post-fault* successful completion; None when nothing
  ever succeeded after the fault (recovery failed outright).

:func:`check_recovery_slo` turns the metrics into a
:class:`~repro.chaos.checkers.CheckResult` so recovery objectives sit in
verdicts next to the safety checkers.

For *overload* scenarios (``repro.admission``), :func:`overload_report`
measures **goodput** — useful completions per virtual second during a
saturation window — against the analytic saturation throughput, plus the
latency of the operations that were accepted, and
:func:`check_goodput_slo` turns that into the degradation contract: a
shedding system must keep goodput near capacity with bounded accepted
latency and bounded queues, while a system without admission control
exhibits the metastable collapse (goodput → 0, unbounded queues) that
the no-admission baselines pin down.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chaos.checkers import CheckResult
from repro.chaos.history import History
from repro.obs.monitor import SuccessWindow


def recovery_metrics(
    history: History,
    fault_at: float,
    kinds: Optional[Iterable[str]] = None,
    enabled: bool = True,
) -> dict:
    """Availability + RTO over the operations invoked at/after ``fault_at``.

    ``kinds`` restricts the measured operations (e.g. only ``store.put``/
    ``store.get``); ``enabled`` records whether the resilience layer was
    on for this run (carried into the verdict so degraded baselines are
    self-describing). The dict is JSON-serializable and deterministic.

    Availability is computed on a
    :class:`~repro.obs.monitor.SuccessWindow` — the same incremental
    windowed success counter behind the online availability monitor and
    its burn-rate rules — fed one sample per operation at its invoke
    time, so online and offline availability share one windowing
    implementation instead of recomputing from raw samples here.
    """
    kind_set = set(kinds) if kinds is not None else None
    window = SuccessWindow()
    for op in history.ops:  # ops are appended in invoke order: time-sorted
        if kind_set is not None and op.kind not in kind_set:
            continue
        if op.t_invoke < fault_at:
            continue
        window.record(
            op.t_invoke,
            op.status == "ok",
            t_done=op.t_return if op.status == "ok" else None,
        )
    window_ops, window_ok = window.counts(start=fault_at)
    availability = window.availability(start=fault_at)
    first_ok = window.first_ok_after(fault_at)
    return {
        "enabled": enabled,
        "fault_at_s": round(fault_at, 6),
        "window_ops": window_ops,
        "window_ok": window_ok,
        "availability": round(availability, 6) if availability is not None else None,
        "rto_s": round(first_ok - fault_at, 6) if first_ok is not None else None,
    }


def check_recovery_slo(
    metrics: dict,
    min_availability: float = 0.9,
    max_rto: Optional[float] = None,
) -> CheckResult:
    """Recovery SLO as a checker: availability during the fault window
    must reach ``min_availability`` and a post-fault success must exist
    (finite RTO, optionally bounded by ``max_rto`` seconds)."""
    violations = []
    availability = metrics.get("availability")
    rto = metrics.get("rto_s")
    if metrics.get("window_ops", 0) == 0:
        violations.append("no operations invoked during the fault window")
    if availability is not None and availability < min_availability:
        violations.append(
            f"availability {availability} below SLO {min_availability}"
        )
    if rto is None:
        violations.append("no successful operation after the fault (RTO unbounded)")
    elif max_rto is not None and rto > max_rto:
        violations.append(f"RTO {rto}s exceeds objective {max_rto}s")
    return CheckResult("recovery-slo", violations, metrics.get("window_ops", 0))


def overload_report(
    history: History,
    window_start: float,
    window_end: float,
    kinds: Optional[Iterable[str]] = None,
    saturation_goodput: Optional[float] = None,
    queue_peaks: Optional[dict] = None,
    shed: Optional[int] = None,
    admission: Optional[dict] = None,
    enabled: bool = True,
) -> dict:
    """Goodput and accepted-latency metrics over a saturation window.

    Measures the operations *invoked* inside ``[window_start,
    window_end)``: **offered** load, completions (``ok``), goodput per
    virtual second, and the nearest-rank p99 latency of the accepted
    (completed-ok) operations. ``saturation_goodput`` is the analytic
    capacity ceiling (worker slots / per-op service time) used to express
    goodput as a fraction of what a perfectly-shedding system could
    sustain. ``queue_peaks`` carries named peak queue depths (e.g. the
    gateway inflight peak) so unbounded queue growth is visible in the
    verdict; ``shed``/``admission`` embed the admission controller's
    totals and snapshot, and ``enabled`` records whether admission
    control was on (baselines are self-describing, mirroring
    :func:`recovery_metrics`). The dict is JSON-serializable and
    deterministic.
    """
    kind_set = set(kinds) if kinds is not None else None
    offered = completed = 0
    latencies = []
    for op in history.ops:
        if kind_set is not None and op.kind not in kind_set:
            continue
        if not (window_start <= op.t_invoke < window_end):
            continue
        offered += 1
        if op.status == "ok":
            completed += 1
            latencies.append(op.t_return - op.t_invoke)
    span = window_end - window_start
    goodput = completed / span if span > 0 else None
    p99 = None
    if latencies:
        latencies.sort()
        rank = min(len(latencies) - 1, max(0, int(0.99 * len(latencies) + 0.5) - 1))
        p99 = latencies[rank]
    fraction = None
    if goodput is not None and saturation_goodput:
        fraction = goodput / saturation_goodput
    return {
        "enabled": enabled,
        "window_s": [round(window_start, 6), round(window_end, 6)],
        "offered": offered,
        "completed_ok": completed,
        "goodput_per_s": round(goodput, 6) if goodput is not None else None,
        "accepted_p99_s": round(p99, 6) if p99 is not None else None,
        "saturation_goodput_per_s": (
            round(saturation_goodput, 6) if saturation_goodput else None
        ),
        "goodput_fraction": round(fraction, 6) if fraction is not None else None,
        "shed": shed,
        "queue_peaks": dict(sorted((queue_peaks or {}).items())),
        "admission": admission,
    }


def check_goodput_slo(
    report: dict,
    min_goodput_fraction: float = 0.7,
    max_accepted_p99: Optional[float] = None,
    max_queue_peak: Optional[float] = None,
) -> CheckResult:
    """Graceful-degradation SLO as a checker.

    Under saturating offered load the system must sustain
    ``min_goodput_fraction`` of the analytic saturation goodput, keep the
    latency of *accepted* operations under ``max_accepted_p99`` (load
    shedding trades availability for bounded latency — if accepted
    requests are also slow, the system is queueing, not shedding), and
    keep every reported queue peak under ``max_queue_peak`` (unbounded
    queue growth is the metastable-failure signature). A no-admission
    baseline run through this checker fails it — that failure is the
    *expected violation* of the baseline scenarios.
    """
    violations = []
    offered = report.get("offered", 0)
    if offered == 0:
        violations.append("no operations offered during the overload window")
    fraction = report.get("goodput_fraction")
    if fraction is not None and fraction < min_goodput_fraction:
        violations.append(
            f"goodput {report.get('goodput_per_s')}/s is {fraction} of "
            f"saturation {report.get('saturation_goodput_per_s')}/s, below "
            f"the {min_goodput_fraction} objective (goodput collapse)"
        )
    if max_accepted_p99 is not None:
        p99 = report.get("accepted_p99_s")
        if p99 is None:
            if offered:
                violations.append(
                    "no accepted operation completed inside the overload window"
                )
        elif p99 > max_accepted_p99:
            violations.append(
                f"accepted-operation p99 {p99}s exceeds bound {max_accepted_p99}s"
            )
    if max_queue_peak is not None:
        for name, peak in sorted(report.get("queue_peaks", {}).items()):
            if peak > max_queue_peak:
                violations.append(
                    f"unbounded queue growth: {name} peaked at {peak} "
                    f"(bound {max_queue_peak})"
                )
    return CheckResult("goodput-slo", violations, offered)
