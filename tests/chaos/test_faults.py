"""FaultPlan / FaultInjector unit tests against a tiny two-node setup."""

import pytest

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcTimeout
from repro.sim.node import Node


def make_pair(rpc_timeout=0.3):
    env = Environment()
    net = Network(env, rpc_timeout=rpc_timeout)
    a = net.register(Node(env, "a"))
    b = net.register(Node(env, "b"))
    return env, net, a, b


class TestFaultPlan:
    def test_events_sorted_by_time_with_stable_ties(self):
        plan = (
            FaultPlan()
            .crash(0.5, "a")
            .restart(0.2, "a")
            .isolate(0.5, "b")
            .heal_all(0.1)
        )
        ordered = plan.sorted_events()
        assert [e.at for e in ordered] == [0.1, 0.2, 0.5, 0.5]
        # Ties preserve insertion order: crash was added before isolate.
        assert [e.action for e in ordered[2:]] == ["crash", "isolate"]

    def test_builder_is_chainable_and_records_kwargs(self):
        plan = FaultPlan().link_fault(0.1, "a", "b", drop=0.5, symmetric=False)
        (event,) = plan.events
        assert event.action == "link_fault"
        assert event.kwargs_dict()["drop"] == 0.5
        assert event.kwargs_dict()["symmetric"] is False


class TestFaultInjector:
    def test_crash_and_restart_applied_at_scheduled_times(self):
        env, net, a, b = make_pair()
        plan = FaultPlan().crash(0.1, "b").restart(0.25, "b")
        injector = FaultInjector(env, net, plan)
        injector.start()
        observed = []

        def probe():
            for _ in range(4):
                observed.append((round(env.now, 3), b.alive))
                yield env.timeout(0.1)

        proc = env.process(probe())
        env.run_until(proc, limit=5.0)
        assert observed == [(0.0, True), (0.1, False), (0.2, False), (0.3, True)]
        assert [e["action"] for e in injector.timeline] == ["crash", "restart"]
        assert [e["t"] for e in injector.timeline] == [0.1, 0.25]

    def test_partition_groups_and_heal_all(self):
        env, net, a, b = make_pair()
        plan = (
            FaultPlan()
            .partition_groups(0.1, [["a"], ["b"]])
            .heal_all(0.3)
        )
        FaultInjector(env, net, plan).start()
        seen = []

        def probe():
            seen.append((round(env.now, 2), net.reachable("a", "b")))
            yield env.timeout(0.2)
            seen.append((round(env.now, 2), net.reachable("a", "b")))
            yield env.timeout(0.2)
            seen.append((round(env.now, 2), net.reachable("a", "b")))

        proc = env.process(probe())
        env.run_until(proc, limit=5.0)
        assert seen == [(0.0, True), (0.2, False), (0.4, True)]

    def test_isolate_blocks_rpc_until_unisolated(self):
        env, net, a, b = make_pair(rpc_timeout=0.05)
        b.handle("ping", lambda payload: "pong")
        plan = FaultPlan().isolate(0.1, "b").unisolate(0.2, "b")
        FaultInjector(env, net, plan).start()
        results = []

        def caller():
            for _ in range(3):
                try:
                    results.append((yield net.rpc(a, b, "ping")))
                except RpcTimeout:
                    results.append("timeout")
                yield env.timeout(0.1)

        proc = env.process(caller())
        env.run_until(proc, limit=5.0)
        assert results == ["pong", "timeout", "pong"]

    def test_slowdown_delays_message_handling(self):
        env, net, a, b = make_pair()
        b.handle("ping", lambda payload: "pong")
        plan = FaultPlan().slowdown(0.05, "b", 0.01)
        FaultInjector(env, net, plan).start()
        latencies = []

        def caller():
            for _ in range(2):
                started = env.now
                yield net.rpc(a, b, "ping")
                latencies.append(env.now - started)
                yield env.timeout(0.1)

        proc = env.process(caller())
        env.run_until(proc, limit=5.0)
        assert latencies[0] < 0.005
        assert latencies[1] > 0.01  # slowdown applied to the request leg

    def test_call_event_runs_callable_and_logs_label_only(self):
        env, net, a, b = make_pair()
        fired = []
        plan = FaultPlan().call(0.1, "custom-recovery", lambda: fired.append(env.now))
        injector = FaultInjector(env, net, plan)
        injector.start()
        env.run(until=0.2)
        assert fired == [0.1]
        assert injector.timeline == [
            {"t": 0.1, "action": "call", "args": ["custom-recovery"]}
        ]

    def test_unknown_action_raises(self):
        env, net, a, b = make_pair()
        plan = FaultPlan()
        plan._add(0.0, "explode")
        injector = FaultInjector(env, net, plan)
        with pytest.raises(ValueError):
            injector._apply(plan.events[0])


class TestLinkFaults:
    def test_drop_probability_one_loses_every_send(self):
        env, net, a, b = make_pair()
        got = []
        b.handle("data", got.append)
        net.set_link_fault("a", "b", drop=1.0, symmetric=False)

        def sender():
            for i in range(5):
                net.send(a, b, "data", i)
                yield env.timeout(0.01)

        proc = env.process(sender())
        env.run_until(proc, limit=5.0)
        env.run(until=env.now + 0.05)
        assert got == []

    def test_dup_probability_one_duplicates_but_never_reduplicates(self):
        env, net, a, b = make_pair()
        got = []
        b.handle("data", got.append)
        net.set_link_fault("a", "b", dup=1.0, symmetric=False)
        net.send(a, b, "data", "x")
        env.run(until=0.1)
        assert got == ["x", "x"]  # exactly one duplicate

    def test_delay_defers_delivery(self):
        env, net, a, b = make_pair()
        got = []
        b.handle("data", lambda payload: got.append(env.now))
        net.set_link_fault("a", "b", delay=0.05, symmetric=False)
        net.send(a, b, "data", "x")
        env.run(until=0.2)
        assert len(got) == 1 and got[0] > 0.05

    def test_clearing_faults_restores_delivery(self):
        env, net, a, b = make_pair()
        got = []
        b.handle("data", got.append)
        net.set_link_fault("a", "b", drop=1.0)
        net.send(a, b, "data", 1)
        env.run(until=0.05)
        net.clear_link_faults()
        net.send(a, b, "data", 2)
        env.run(until=0.1)
        assert got == [2]

    def test_fault_free_runs_consume_no_chaos_randomness(self):
        """Installing the chaos stream lazily keeps fault-free simulations
        byte-for-byte identical to builds without chaos support."""
        env, net, a, b = make_pair()
        assert net._chaos_rng is None
        net.send(a, b, "data", 1)
        env.run(until=0.05)
        assert net._chaos_rng is None
