"""Unit tests for the alerting layer, the flight recorder, and the
monitor-adjacent satellite pieces (wall block, Chrome instants, the
SuccessWindow-backed liveness metrics)."""

import glob
import json
import os

import pytest

from repro.chaos.history import History
from repro.chaos.liveness import recovery_metrics
from repro.chaos.runner import flight_records, run_scenario
from repro.obs.alerts import (
    Alert,
    AlertManager,
    BurnRateRule,
    FlightRecorder,
    MONITOR_SCHEMA,
    SLO,
    default_rules,
    flight_record_to_json,
    render_flight_record,
    validate_flight_record,
)
from repro.obs.bench import BenchmarkArtifact, validate_artifact, wall_block
from repro.obs.export import monitor_instants, to_chrome_trace
from repro.obs.monitor import MonitorHub, SuccessWindow
from repro.obs.registry import MetricsRegistry

pytestmark = [pytest.mark.monitor]

FLIGHT_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "bench",
                          "monitor")


class _FakeEnv:
    now = 0.0


def _hub():
    return MonitorHub(_FakeEnv())


# ----------------------------------------------------------------------
# Burn-rate rules + alert manager
# ----------------------------------------------------------------------
class TestBurnRate:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO("a", "availability", 1.5)
        with pytest.raises(ValueError):
            SLO("a", "bogus", 0.9)
        with pytest.raises(ValueError):
            SLO("l", "latency_p99_ms", -1.0)

    def test_availability_burn_fires_on_error_budget_exhaustion(self):
        hub = _hub()
        rule = BurnRateRule(SLO("avail", "availability", 0.9),
                            fast_window=2.0, slow_window=10.0, threshold=2.0)
        manager = AlertManager(hub, rules=[rule], interval=0.05)
        # 10 ops, all failing: error rate 1.0 / budget 0.1 = 10x burn.
        for i in range(10):
            hub.on_invoke(i * 0.1, i * 0.1 + 0.001, ok=False)
        fired = manager.evaluate(now=1.0)
        assert [a.rule for a in fired] == ["avail-burn"]
        # Still firing: no re-page on the next evaluation.
        assert manager.evaluate(now=1.05) == []
        # Recovery: enough successes drop both windows below threshold.
        for i in range(200):
            hub.on_invoke(1.1 + i * 0.01, 1.1 + i * 0.01, ok=True)
        assert manager.evaluate(now=11.5) == []
        assert manager.transitions[-1]["state"] == "ok"

    def test_min_events_guard_suppresses_thin_windows(self):
        hub = _hub()
        rule = BurnRateRule(SLO("avail", "availability", 0.9),
                            fast_window=2.0, slow_window=10.0, threshold=2.0,
                            min_events=5)
        manager = AlertManager(hub, rules=[rule])
        for i in range(3):  # fewer than min_events: never judged
            hub.on_invoke(i * 0.1, i * 0.1, ok=False)
        assert manager.evaluate(now=1.0) == []

    def test_duplicate_rule_names_rejected(self):
        hub = _hub()
        rule = default_rules()[0]
        with pytest.raises(ValueError):
            AlertManager(hub, rules=[rule, rule])

    def test_latency_burn_uses_p99(self):
        hub = _hub()
        rule = BurnRateRule(SLO("lat", "latency_p99_ms", 10.0),
                            fast_window=2.0, slow_window=10.0, threshold=1.0)
        manager = AlertManager(hub, rules=[rule])
        for i in range(20):  # 50ms operations against a 10ms objective
            hub.on_invoke(i * 0.1, i * 0.1 + 0.05, ok=True)
        fired = manager.evaluate(now=2.0)
        assert [a.rule for a in fired] == ["lat-burn"]
        assert fired[0].burn_fast > 1.0


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.on_metric(i * 0.1, "m", {"i": i})
        assert len(recorder.ring) == 4
        assert recorder.dropped == 6

    def test_snapshot_on_alert_is_valid_and_deterministic(self):
        recorder = FlightRecorder(capacity=8, context={"scenario": "unit"})
        recorder.on_metric(0.1, "gateway.op", {"ok": True, "latency_ms": 1.0})
        recorder.on_violation(0.2, "queue-delivery", "boom")
        alert = Alert(t=0.3, rule="avail-burn", slo="avail",
                      kind="availability", severity="page", threshold=2.0,
                      burn_fast=5.0, burn_slow=4.0, message="burning")
        recorder.on_alert(alert)
        assert len(recorder.snapshots) == 1
        doc = recorder.snapshots[0]
        assert doc["schema"] == MONITOR_SCHEMA
        assert validate_flight_record(doc) == []
        assert flight_record_to_json(doc) == flight_record_to_json(
            json.loads(flight_record_to_json(doc)))
        text = render_flight_record(doc)
        assert "avail-burn" in text and "queue-delivery" in text

    def test_validate_rejects_malformed_docs(self):
        assert validate_flight_record({"schema": "nope"})
        assert validate_flight_record(
            {"schema": MONITOR_SCHEMA, "events": [{"no": "type"}]}
        )


class TestCommittedFlightRecords:
    def test_committed_records_exist_and_validate(self):
        paths = sorted(glob.glob(os.path.join(FLIGHT_DIR, "monitor_*.json")))
        assert paths, "no committed flight-recorder artifacts in bench/monitor"
        for path in paths:
            with open(path) as handle:
                doc = json.load(handle)
            assert validate_flight_record(doc) == [], path
            assert doc["alert"] is not None, path

    def test_rerun_reproduces_committed_record_byte_identically(self):
        name = "storage-node-flap"
        run_scenario(name, seed=0)
        docs = flight_records()
        assert len(docs) == 1
        path = os.path.join(FLIGHT_DIR, f"monitor_{name}_seed0_alert0.json")
        with open(path) as handle:
            committed = handle.read()
        assert flight_record_to_json(docs[0]) == committed, (
            f"flight record for {name} drifted; regenerate with: "
            f"python -m repro.chaos run {name} --flight-dir bench/monitor"
        )


# ----------------------------------------------------------------------
# Satellite: wall-clock block in repro.bench/1
# ----------------------------------------------------------------------
class TestWallBlock:
    def test_shape_and_rates(self):
        block = wall_block(2.0, 1000)
        assert block == {"duration_s": 2.0, "events": 1000,
                         "events_per_s": 500}
        assert wall_block(0.0, 5)["events_per_s"] is None

    def test_artifact_accepts_and_defaults_wall(self):
        base = dict(benchmark_id="b", title="t", seed=0, config={},
                    metrics={"m": {"value": 1.0, "unit": "x",
                                   "direction": "higher"}})
        plain = BenchmarkArtifact(**base)
        assert plain.to_dict()["wall"] is None
        validate_artifact(plain.to_dict())
        timed = BenchmarkArtifact(**base, wall=wall_block(1.5, 300))
        validate_artifact(timed.to_dict())
        # wall is informational: metric payloads are unaffected.
        assert timed.to_dict()["metrics"] == plain.to_dict()["metrics"]

    def test_validate_rejects_malformed_wall(self):
        base = dict(benchmark_id="b", title="t", seed=0, config={},
                    metrics={"m": {"value": 1.0, "unit": "x",
                                   "direction": "higher"}})
        doc = BenchmarkArtifact(**base).to_dict()
        doc["wall"] = {"duration_s": 1.0}  # missing keys
        with pytest.raises(ValueError):
            validate_artifact(doc)


# ----------------------------------------------------------------------
# Satellite: Chrome-trace instant events
# ----------------------------------------------------------------------
class TestMonitorInstants:
    def test_alerts_and_transitions_become_instants(self):
        alert = Alert(t=0.25, rule="avail-burn", slo="avail",
                      kind="availability", severity="page", threshold=2.0,
                      burn_fast=3.0, burn_slow=2.5, message="m")
        transitions = [{"t": 0.25, "rule": "avail-burn", "state": "firing"},
                       {"t": 0.90, "rule": "avail-burn", "state": "ok"}]
        instants = monitor_instants([alert], transitions)
        assert [e["ph"] for e in instants] == ["i", "i", "i"]
        assert all(e["s"] == "g" and e["pid"] == 0 for e in instants)
        assert instants[0]["ts"] == instants[1]["ts"] == 0.25 * 1e6
        assert instants[-1]["name"] == "avail-burn:ok"

    def test_instants_land_in_the_trace_with_a_monitor_lane(self):
        instants = monitor_instants(
            [], [{"t": 0.1, "rule": "r", "state": "firing"}])
        doc = json.loads(to_chrome_trace([], instants=instants))
        events = doc["traceEvents"]
        lanes = [e for e in events if e["ph"] == "M" and e["pid"] == 0]
        assert lanes and lanes[0]["args"]["name"] == "monitor"
        assert any(e["ph"] == "i" for e in events)

    def test_trace_without_instants_is_unchanged(self):
        assert json.loads(to_chrome_trace([]))["traceEvents"] == []


# ----------------------------------------------------------------------
# Satellite: SuccessWindow-backed recovery metrics
# ----------------------------------------------------------------------
class TestRecoveryMetricsRefactor:
    def _history(self, env_times):
        history = History(env=None)

        class FakeEnv:
            now = 0.0

        history.env = FakeEnv()
        for kind, t_invoke, t_return, ok in env_times:
            history.env.now = t_invoke
            op = history.invoke("c", kind, "k", 1)
            history.env.now = t_return
            (history.ok if ok else history.fail)(op, "x")
        return history

    def test_success_window_path_agrees_with_gauge_window(self):
        """The refactored recovery_metrics (SuccessWindow) must agree
        with the old MetricsRegistry gauge computation on the same ops."""
        ops = [("op", 0.1, 0.2, True),
               ("op", 1.0, 1.1, False),
               ("op", 1.2, 1.6, True),
               ("op", 1.7, 1.8, True),
               ("op", 2.0, 2.4, False)]
        fault_at = 0.5
        metrics = recovery_metrics(self._history(ops), fault_at=fault_at)

        registry = MetricsRegistry()
        gauge = registry.gauge("recovery.op_ok")
        first_ok = None
        for _, t_invoke, t_return, ok in ops:
            if t_invoke < fault_at:
                continue
            gauge.record(t_invoke, 1.0 if ok else 0.0)
            if ok and (first_ok is None or t_return < first_ok):
                first_ok = t_return
        stats = registry.gauge_window("recovery.op_ok", start=fault_at)
        assert metrics["window_ops"] == stats["count"]
        assert metrics["window_ok"] == int(sum(v for _, v in gauge.samples))
        assert metrics["availability"] == round(stats["mean"], 6)
        assert metrics["rto_s"] == round(first_ok - fault_at, 6)

    def test_success_window_and_metrics_share_counts(self):
        window = SuccessWindow()
        for t, ok in [(1.0, False), (1.2, True), (1.7, True)]:
            window.record(t, ok, t_done=t + 0.1 if ok else None)
        assert window.counts(start=0.5) == (3, 2)
        assert window.availability(start=0.5) == pytest.approx(2 / 3)
        assert window.first_ok_after(0.5) == pytest.approx(1.3)
