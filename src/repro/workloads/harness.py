"""Load-generation and measurement harness.

Two generator shapes, matching how the paper runs its experiments:

- *closed loop*: N concurrent clients, each looping
  issue-request -> wait-response; throughput emerges from concurrency and
  service latency (the append-only microbenchmark, Retwis, queues).
- *open loop*: Poisson arrivals at a fixed offered rate; latency is
  measured as a function of load (the latency-vs-throughput curves of
  Figure 11).

Plus the elasticity additions: *shaped* open-loop arrivals whose rate
varies over virtual time (:class:`DiurnalShape`, :class:`FlashCrowdShape`,
driven by :func:`run_shaped_open_loop` via Lewis–Shedler thinning) and a
YCSB-style :class:`ZipfianSampler` for hot-key skew.

All generators warm up before measuring and return a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import cos, pi
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.obs.trace import STATUS_ERROR, STATUS_OK
from repro.sim.kernel import Environment, Interrupt
from repro.sim.metrics import LatencyRecorder, TimeSeries


@dataclass
class RunResult:
    """Outcome of one load-generation run."""

    completed: int
    duration: float
    latencies: LatencyRecorder
    errors: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def median_latency(self) -> float:
        return self.latencies.median()

    def p99_latency(self) -> float:
        return self.latencies.p99()

    def summary(self) -> Dict[str, float]:
        out = {"throughput": self.throughput, "completed": float(self.completed)}
        if self.latencies.count:
            out["median"] = self.median_latency()
            out["p99"] = self.p99_latency()
        return out


def run_closed_loop(
    env: Environment,
    make_op: Callable[[int], Callable[[], Generator]],
    num_clients: int,
    duration: float,
    warmup: float = 0.05,
    limit_factor: float = 20.0,
    obs=None,
) -> RunResult:
    """N clients looping ``op`` back to back for ``duration`` of virtual
    time (after ``warmup``). ``make_op(client_index)`` returns the client's
    op factory; each call of the factory yields one request generator.

    Pass an enabled :class:`~repro.obs.ObsRecorder` as ``obs`` to wrap each
    request in a root trace; ``result.extra["request_traces"]`` then holds
    ``(latency, trace_id)`` for every measured request (see
    :func:`dump_slowest_trace`)."""
    latencies = LatencyRecorder("closed-loop")
    state = {"completed": 0, "errors": 0, "stop": False}
    tracer = obs.tracer if obs is not None and obs.enabled else None
    request_traces: List[Tuple[float, int]] = []
    t_start = env.now + warmup
    t_end = t_start + duration

    def client(index: int) -> Generator:
        op_factory = make_op(index)
        try:
            while not state["stop"]:
                started = env.now
                span = prev = None
                if tracer is not None:
                    span = tracer.start_trace(
                        "request", node="client", kind="client",
                        attrs={"client": index},
                    )
                    prev = tracer.set_process_context(span.context)
                try:
                    yield env.process(op_factory(), name=f"client-{index}-op")
                except Interrupt:
                    if span is not None:
                        span.finish(STATUS_ERROR, error="interrupted")
                    raise
                except Exception:  # noqa: BLE001 - workload op failed
                    state["errors"] += 1
                    if span is not None:
                        span.finish(STATUS_ERROR)
                        tracer.set_process_context(prev)
                    continue
                finished = env.now
                if span is not None:
                    span.finish(STATUS_OK)
                    tracer.set_process_context(prev)
                if t_start <= finished <= t_end:
                    latencies.record(finished - started)
                    state["completed"] += 1
                    if span is not None:
                        request_traces.append((finished - started, span.context.trace_id))
        except Interrupt:
            return

    clients = [env.process(client(i), name=f"client-{i}") for i in range(num_clients)]
    stopper = env.timeout(warmup + duration)
    env.run_until(stopper, limit=env.now + (warmup + duration) * limit_factor + 60.0)
    state["stop"] = True
    for proc in clients:
        if proc.is_alive:
            proc.interrupt("run over")
    env.run(until=env.now)  # flush same-time interrupts
    extra: Dict[str, Any] = {}
    if tracer is not None:
        extra["request_traces"] = request_traces
    return RunResult(
        completed=state["completed"],
        duration=duration,
        latencies=latencies,
        errors=state["errors"],
        extra=extra,
    )


def run_open_loop(
    env: Environment,
    make_op: Callable[[int], Generator],
    rate: float,
    duration: float,
    rng,
    warmup: float = 0.1,
    max_in_flight: int = 10_000,
    obs=None,
) -> RunResult:
    """Poisson arrivals at ``rate`` requests/second; ``make_op(i)`` builds
    the i-th request generator. Latency measured per completed request.
    ``obs`` works as in :func:`run_closed_loop`."""
    latencies = LatencyRecorder("open-loop")
    state = {"completed": 0, "errors": 0, "in_flight": 0, "launched": 0}
    tracer = obs.tracer if obs is not None and obs.enabled else None
    request_traces: List[Tuple[float, int]] = []
    t_start = env.now + warmup
    t_end = t_start + duration

    def one_request(i: int) -> Generator:
        started = env.now
        state["in_flight"] += 1
        span = None
        if tracer is not None:
            span = tracer.start_trace(
                "request", node="client", kind="client", attrs={"request": i}
            )
            tracer.set_process_context(span.context)
        try:
            yield env.process(make_op(i), name=f"req-{i}")
        except Exception:  # noqa: BLE001
            state["errors"] += 1
            if span is not None:
                span.finish(STATUS_ERROR)
            return
        finally:
            state["in_flight"] -= 1
        finished = env.now
        if span is not None:
            span.finish(STATUS_OK)
        if t_start <= finished <= t_end:
            latencies.record(finished - started)
            state["completed"] += 1
            if span is not None:
                request_traces.append((finished - started, span.context.trace_id))

    def arrival_process() -> Generator:
        i = 0
        while env.now < t_end:
            yield env.timeout(rng.expovariate(rate))
            if state["in_flight"] < max_in_flight:
                env.process(one_request(i), name=f"arrival-{i}")
                state["launched"] += 1
            i += 1

    arrivals = env.process(arrival_process(), name="arrivals")
    env.run_until(arrivals, limit=env.now + (warmup + duration) * 50 + 120.0)
    # Let stragglers finish (up to a grace period) so tail latencies count.
    env.run(until=env.now + 0.5)
    extra: Dict[str, Any] = {"offered": rate, "launched": state["launched"]}
    if tracer is not None:
        extra["request_traces"] = request_traces
    return RunResult(
        completed=state["completed"],
        duration=duration,
        latencies=latencies,
        errors=state["errors"],
        extra=extra,
    )


# ---------------------------------------------------------------------------
# Time-varying traffic shapes (elasticity workloads)
# ---------------------------------------------------------------------------

@dataclass
class DiurnalShape:
    """A smooth day/night cycle: the offered rate swings sinusoidally
    between ``base_rate`` (the trough, at ``t=phase``) and ``peak_rate``
    once per ``period`` seconds of virtual time."""

    base_rate: float
    peak_rate: float
    period: float
    phase: float = 0.0

    def __post_init__(self):
        if self.base_rate < 0 or self.peak_rate < self.base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def max_rate(self) -> float:
        return self.peak_rate

    def rate_at(self, t: float) -> float:
        swing = 0.5 * (1.0 - cos(2.0 * pi * (t - self.phase) / self.period))
        return self.base_rate + (self.peak_rate - self.base_rate) * swing


@dataclass
class FlashCrowdShape:
    """A flash crowd: steady ``base_rate``, then a linear ramp to
    ``peak_rate`` starting at ``surge_at`` over ``ramp`` seconds, held
    for ``hold`` seconds, decaying back linearly over ``decay``."""

    base_rate: float
    peak_rate: float
    surge_at: float
    ramp: float = 0.2
    hold: float = 0.5
    decay: float = 0.3

    def __post_init__(self):
        if self.base_rate < 0 or self.peak_rate < self.base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if min(self.ramp, self.hold, self.decay) < 0:
            raise ValueError("ramp/hold/decay must be >= 0")

    @property
    def max_rate(self) -> float:
        return self.peak_rate

    def rate_at(self, t: float) -> float:
        start, peak = self.surge_at, self.peak_rate - self.base_rate
        if t < start or peak <= 0:
            return self.base_rate
        t -= start
        if t < self.ramp:
            return self.base_rate + peak * (t / self.ramp)
        t -= self.ramp
        if t < self.hold:
            return self.peak_rate
        t -= self.hold
        if t < self.decay:
            return self.peak_rate - peak * (t / self.decay)
        return self.base_rate


class ZipfianSampler:
    """YCSB-style Zipfian key sampler over ``[0, n)``: key 0 is the
    hottest, with skew ``theta`` (0.99 in YCSB's default hot-key mix).

    Uses Gray's rejection-free inverse-CDF approximation (the YCSB
    ``ZipfianGenerator``); deterministic given the caller's ``rng``.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ValueError("need at least one key")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        zeta2 = sum(1.0 / (i ** theta) for i in range(1, min(n, 2) + 1))
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                     / (1.0 - zeta2 / self._zetan)) if n > 1 else 0.0

    def sample(self, rng) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0) ** self._alpha))


def run_shaped_open_loop(
    env: Environment,
    make_op: Callable[[int], Generator],
    shape,
    duration: float,
    rng,
    warmup: float = 0.0,
    max_in_flight: int = 10_000,
    obs=None,
) -> RunResult:
    """Open-loop arrivals whose instantaneous rate follows
    ``shape.rate_at(t - t0)`` (t0 = measurement start, after warmup).

    Arrivals come from Lewis–Shedler thinning of a homogeneous Poisson
    process at ``shape.max_rate``: candidate gaps are exponential at the
    peak rate and each candidate is accepted with probability
    ``rate_at/max_rate`` — exact for any bounded rate function, and
    deterministic given ``rng``.

    Beyond the usual fields, ``result.extra`` carries the elasticity
    benchmark's raw material: ``latency_series`` (a
    :class:`~repro.sim.metrics.TimeSeries` of per-request latency at
    completion time, relative to t0) and ``offered_series`` (arrivals
    per second in 0.1 s buckets, relative to t0).
    """
    max_rate = shape.max_rate
    if max_rate <= 0:
        raise ValueError("shape must have a positive max_rate")
    latencies = LatencyRecorder("shaped-open-loop")
    latency_series = TimeSeries("latency")
    bucket = 0.1
    arrivals_per_bucket: Dict[int, int] = {}
    state = {"completed": 0, "errors": 0, "in_flight": 0, "launched": 0}
    tracer = obs.tracer if obs is not None and obs.enabled else None
    request_traces: List[Tuple[float, int]] = []
    t0 = env.now + warmup
    t_end = t0 + duration

    def one_request(i: int) -> Generator:
        started = env.now
        state["in_flight"] += 1
        span = None
        if tracer is not None:
            span = tracer.start_trace(
                "request", node="client", kind="client", attrs={"request": i}
            )
            tracer.set_process_context(span.context)
        try:
            yield env.process(make_op(i), name=f"req-{i}")
        except Exception:  # noqa: BLE001 - workload op failed
            state["errors"] += 1
            if span is not None:
                span.finish(STATUS_ERROR)
            return
        finally:
            state["in_flight"] -= 1
        finished = env.now
        if span is not None:
            span.finish(STATUS_OK)
        if t0 <= finished <= t_end + 0.5:
            latency = finished - started
            latencies.record(latency)
            latency_series.add(finished - t0, latency)
            state["completed"] += 1
            if span is not None:
                request_traces.append((latency, span.context.trace_id))

    def arrival_process() -> Generator:
        i = 0
        while env.now < t_end:
            yield env.timeout(rng.expovariate(max_rate))
            if env.now >= t_end:
                break
            t_rel = env.now - t0
            rate = shape.rate_at(t_rel) if t_rel >= 0 else shape.rate_at(0.0)
            if rng.random() * max_rate > rate:
                continue  # thinned: the candidate arrival never happens
            if state["in_flight"] < max_in_flight:
                env.process(one_request(i), name=f"arrival-{i}")
                state["launched"] += 1
                if t_rel >= 0:
                    arrivals_per_bucket[int(t_rel / bucket)] = (
                        arrivals_per_bucket.get(int(t_rel / bucket), 0) + 1
                    )
            i += 1

    arrivals = env.process(arrival_process(), name="shaped-arrivals")
    env.run_until(arrivals, limit=env.now + (warmup + duration) * 50 + 120.0)
    env.run(until=env.now + 0.5)  # stragglers: tail latencies count
    offered_series = TimeSeries("offered")
    for idx in sorted(arrivals_per_bucket):
        offered_series.add(idx * bucket, arrivals_per_bucket[idx] / bucket)
    extra: Dict[str, Any] = {
        "launched": state["launched"],
        "latency_series": latency_series,
        "offered_series": offered_series,
        "shape": type(shape).__name__,
    }
    if tracer is not None:
        extra["request_traces"] = request_traces
    return RunResult(
        completed=state["completed"],
        duration=duration,
        latencies=latencies,
        errors=state["errors"],
        extra=extra,
    )


def dump_slowest_trace(result: RunResult, obs, path: Optional[str] = None) -> Tuple[str, str]:
    """Chrome trace JSON + latency-attribution report for the slowest
    measured request of a traced run (``obs`` passed to the run).

    Returns ``(chrome_json, report_text)``; with ``path``, also writes
    ``<path>.json`` and ``<path>.txt`` (parent directories are created).
    """
    import os

    from repro.obs.export import attribution_report, slowest_trace, to_chrome_trace

    spans = obs.tracer.spans
    traces = result.extra.get("request_traces") or []
    if traces:
        _, trace_id = max(traces, key=lambda lt: (lt[0], -lt[1]))
    else:
        trace_id = slowest_trace(spans)
    chrome_json = to_chrome_trace(spans, trace_id=trace_id)
    report = attribution_report(spans, trace_id=trace_id)
    if path is not None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(f"{path}.json", "w") as fh:
            fh.write(chrome_json)
        with open(f"{path}.txt", "w") as fh:
            fh.write(report)
    return chrome_json, report
