"""The metalog: Boki's unified mechanism (§4.1).

Every physical log has one metalog recording its internal state
transitions. Entries carry the *global progress vector* — for each shard,
the count of records known fully replicated — plus any trim commands.
Appending an entry extends the log's total order (ordering); subscribers
compare their applied position against readers' positions (consistency);
sealing the metalog freezes the log for reconfiguration (fault tolerance).

This module holds the pure metalog state machine; replication across
sequencer nodes lives in :mod:`repro.core.sequencer`.

Multi-tenancy: one metalog orders records for *every* tenant sharing its
physical log — isolation is by namespace, not by separate logs (§3). The
log-space prefix layout is defined here (the metalog is the lowest layer
that sees scoped ids, inside trim commands); the scoping functions live
in :mod:`repro.core.index`, and the tenant -> log-space assignment in
:mod:`repro.tenant.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Log-space prefix layout shared by the index and the tenant registry:
#: raw book ids and tags occupy the low 64 bits (wide enough for the
#: support libraries' 61-bit hashed tags); the owning log space is
#: prefixed above them, riding on Python's arbitrary-precision ints.
#: Log space 0 (the reserved default tenant) maps identically, so
#: single-tenant deployments see historical ids.
LOGSPACE_SHIFT = 64
DEFAULT_LOGSPACE = 0
MAX_RAW_ID = (1 << LOGSPACE_SHIFT) - 1


class SealedError(Exception):
    """Append attempted on a sealed metalog."""


@dataclass(frozen=True)
class TrimCommand:
    """A trim propagated through the metalog (§4.4): delete the index rows
    of ``(book_id, tag)`` up to and including ``until_seqnum``. ``tag=0``
    (the implicit every-record tag) trims the whole LogBook.

    Book id and tag arrive already log-space-scoped (the LogBook handle
    scopes them), so a tenant's trim can only ever name its own rows."""

    book_id: int
    tag: int
    until_seqnum: int

    @property
    def logspace(self) -> int:
        """The log space this trim is confined to (0 = default tenant)."""
        return self.book_id >> LOGSPACE_SHIFT


@dataclass(frozen=True)
class MetalogEntry:
    """One metalog entry (Figure 3: "each metalog entry is a vector").

    ``progress`` maps shard name -> record count: all records of that shard
    with ``local_id < count`` are ordered once this entry is applied.
    ``start_pos`` is the physical-log position of the first record in this
    entry's delta set, so any subscriber can compute seqnums locally.
    """

    index: int
    progress: Tuple[Tuple[str, int], ...]  # sorted (shard, count) pairs
    start_pos: int
    trims: Tuple[TrimCommand, ...] = ()

    def progress_dict(self) -> Dict[str, int]:
        return dict(self.progress)


def freeze_progress(progress: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(progress.items()))


class Metalog:
    """A single metalog replica's state: an append-only entry list + seal bit."""

    def __init__(self, log_id: int, term_id: int):
        self.log_id = log_id
        self.term_id = term_id
        self.entries: List[MetalogEntry] = []
        self.sealed = False

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, entry: MetalogEntry) -> None:
        if self.sealed:
            raise SealedError(f"metalog (log={self.log_id}, term={self.term_id}) is sealed")
        if entry.index != len(self.entries):
            raise ValueError(
                f"entry index {entry.index} does not extend metalog of length {len(self.entries)}"
            )
        if self.entries:
            prev = self.entries[-1].progress_dict()
            for shard, count in entry.progress:
                if count < prev.get(shard, 0):
                    raise ValueError(f"progress for shard {shard!r} regressed: {count}")
        self.entries.append(entry)

    def seal(self) -> int:
        """Make the metalog unwritable; returns current length (Delos-style
        seal acks carry the replica's tail position)."""
        self.sealed = True
        return len(self.entries)

    def entries_from(self, index: int) -> List[MetalogEntry]:
        return self.entries[index:]

    def tail_progress(self) -> Dict[str, int]:
        """The latest global progress vector (empty if no entries)."""
        return self.entries[-1].progress_dict() if self.entries else {}

    def total_ordered(self) -> int:
        """Number of physical-log positions assigned so far."""
        if not self.entries:
            return 0
        last = self.entries[-1]
        prev = self.entries[-2].progress_dict() if len(self.entries) > 1 else {}
        delta = sum(
            count - prev.get(shard, 0) for shard, count in last.progress
        )
        return last.start_pos + delta
