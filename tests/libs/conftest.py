"""Shared fixtures for support-library tests."""

import pytest

from repro.baselines.dynamodb import DynamoDBService
from repro.core import BokiCluster


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=4, index_engines_per_log=4)
    DynamoDBService(c.env, c.net, c.streams)
    c.boot()
    return c


def drive(cluster, gen, limit=600.0):
    return cluster.drive(gen, limit=limit)
