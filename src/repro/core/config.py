"""Boki deployment configuration.

Two layers, matching §4.2's description of what the control plane stores:

- :class:`BokiConfig` — static tunables: replication factors, batching
  intervals, cache sizes, and the latency model constants.
- :class:`TermConfig` — the per-term assignment installed by the
  controller: which storage nodes back each physical-log shard, which
  sequencers host each metalog (and who is primary), which engines hold
  each log's index, and the consistent-hashing parameters mapping LogBooks
  to physical logs. Reconfiguration (§4.5) replaces the TermConfig and
  bumps ``term_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.hashing import ConsistentHashRing


@dataclass
class BokiConfig:
    """Static tunables and the latency model.

    Latency constants are calibrated against the paper's measured EC2
    numbers (§7 setup: 107 us RTT; Table 3 read latencies) and the
    Nightcore paper's invocation overheads; see EXPERIMENTS.md.
    """

    ndata: int = 3          # replication factor of physical-log shards
    nmeta: int = 3          # replication factor of metalogs
    num_logs: int = 1       # physical logs virtualizing the LogBooks
    cache_bytes: int = 1 << 30  # 1 GiB record cache per engine (paper setup)

    #: Primary sequencer's batching interval for metalog appends (Scalog-
    #: style periodic ordering).
    metalog_interval: float = 0.3e-3
    #: Storage nodes report progress vectors to the primary at this period.
    progress_interval: float = 0.3e-3

    # -- latency model --
    ipc_delay: float = 50e-6        # function container <-> engine, one way
    engine_service: float = 15e-6   # engine CPU per LogBook op
    storage_service: float = 80e-6  # storage CPU per replicate/read op
    media_read_latency: float = 200e-6  # RocksDB point read on NVMe
    storage_cpu: int = 8            # vCPUs per storage node
    engine_cpu: int = 8             # vCPUs per function node

    #: Back up auxiliary data on storage nodes (Table 7's second config).
    aux_backup: bool = False

    #: Consistent hashing partitions (Dynamo strategy 3).
    ring_partitions: int = 256

    def quorum(self) -> int:
        return self.nmeta // 2 + 1


@dataclass
class LogAssignment:
    """Placement of one physical log for one term."""

    log_id: int
    shards: List[str]                       # engine node names owning shards
    shard_storage: Dict[str, List[str]]     # shard -> storage node names
    sequencers: List[str]                   # sequencer node names (nmeta)
    primary: str                            # primary sequencer
    index_engines: List[str]                # engines maintaining the index

    def storage_nodes(self) -> List[str]:
        seen: List[str] = []
        for nodes in self.shard_storage.values():
            for node in nodes:
                if node not in seen:
                    seen.append(node)
        return seen

    def subscribers(self) -> List[str]:
        """Nodes that subscribe to this log's metalog: every shard owner,
        every index engine, and every storage node."""
        out = list(dict.fromkeys(self.shards + self.index_engines + self.storage_nodes()))
        return out


@dataclass
class TermConfig:
    """The full cluster assignment for one term."""

    term_id: int
    logs: Dict[int, LogAssignment]
    ring: ConsistentHashRing

    def log_for_book(self, book_id: int) -> int:
        return self.ring.lookup(book_id)

    def assignment(self, log_id: int) -> LogAssignment:
        return self.logs[log_id]
