"""Simulated Amazon SQS (§7.4, Table 4).

A fully managed queue service: every send/receive is an HTTP API round
trip with multi-millisecond latency, and per-queue request capacity means
producer-heavy loads (the 4:1 P:C configurations) build deep queues with
the large delivery delays Table 4 shows for SQS.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Tuple

from repro.baselines.latency import SQS_CONCURRENCY, SQS_RECEIVE, SQS_SEND
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource


class SQSService:
    """The simulated regional SQS endpoint: named FIFO-ish queues."""

    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str = "sqs"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=SQS_CONCURRENCY))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=SQS_CONCURRENCY)
        #: queue name -> deque of (enqueue_time, message)
        self.queues: dict = {}
        self.op_count = 0
        self.node.handle("sqs.send", self._h_send)
        self.node.handle("sqs.receive", self._h_receive)

    def queue(self, name: str) -> Deque[Tuple[float, Any]]:
        return self.queues.setdefault(name, deque())

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _h_send(self, payload: dict) -> Generator:
        yield from self._service(SQS_SEND)
        self.queue(payload["queue"]).append((self.env.now, payload["message"]))
        return True

    def _h_receive(self, payload: dict) -> Generator:
        """Returns (message, time_in_queue) or None when empty."""
        yield from self._service(SQS_RECEIVE)
        q = self.queue(payload["queue"])
        if not q:
            return None
        enqueued, message = q.popleft()
        return message, self.env.now - enqueued


class SQSClient:
    def __init__(self, net: Network, node: Node, service_name: str = "sqs"):
        self.net = net
        self.node = node
        self.service_name = service_name

    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.service_name, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def send(self, queue: str, message: Any) -> Generator:
        return (yield from self._call("sqs.send", {"queue": queue, "message": message}))

    def receive(self, queue: str) -> Generator:
        """Returns (message, delivery_latency) or None."""
        return (yield from self._call("sqs.receive", {"queue": queue}))
