"""QoS fairness: DRR scheduling shares, token buckets, weighted shedding."""

import pytest

from repro.admission.errors import BATCH, INTERACTIVE, Overloaded
from repro.core.cluster import BokiCluster
from repro.faas.scheduling import DeficitRoundRobin
from repro.tenant import TenantThrottled, TokenBucket

pytestmark = pytest.mark.tenant


def _jain(shares):
    n = len(shares)
    total = sum(shares)
    squares = sum(s * s for s in shares)
    return (total * total) / (n * squares) if squares else 0.0


# ----------------------------------------------------------------------
# Deficit round robin
# ----------------------------------------------------------------------
def test_drr_equal_weights_jain_index():
    """10 equal-weight tenants, all permanently backlogged: served work
    is near-perfectly fair (Jain's index >= 0.9; here it should be 1)."""
    drr = DeficitRoundRobin(quantum=1.0)
    tenants = [f"t{i}" for i in range(10)]
    for t in tenants:
        drr.set_weight(t, 1.0)
        for j in range(200):
            drr.enqueue(t, (t, j))
    for _ in range(1000):
        assert drr.next() is not None
    shares = [drr.served.get(t, 0.0) for t in tenants]
    assert sum(shares) == 1000
    assert _jain(shares) >= 0.9
    assert max(shares) - min(shares) <= 1.0  # exact with unit costs


def test_drr_weighted_shares_within_5_percent():
    """Weights 1:2:4 under permanent backlog -> served shares within 5%
    of the configured ratios."""
    drr = DeficitRoundRobin(quantum=1.0)
    weights = {"bronze": 1.0, "silver": 2.0, "gold": 4.0}
    for t, w in weights.items():
        drr.set_weight(t, w)
        for j in range(4000):
            drr.enqueue(t, (t, j))
    total = 3500
    for _ in range(total):
        assert drr.next() is not None
    wsum = sum(weights.values())
    for t, w in weights.items():
        expected = total * w / wsum
        assert abs(drr.served[t] - expected) / expected <= 0.05, (
            t, drr.served[t], expected)


def test_drr_idle_tenants_bank_nothing():
    """A tenant that drains loses its deficit: no burst credit for idling."""
    drr = DeficitRoundRobin(quantum=1.0)
    drr.set_weight("a", 1.0)
    drr.set_weight("b", 1.0)
    drr.enqueue("a", "a0")
    assert drr.next() == "a0"          # a drains -> leaves the rotation
    for j in range(10):
        drr.enqueue("b", f"b{j}")
    served = [drr.next() for _ in range(10)]
    assert served == [f"b{j}" for j in range(10)]
    # When a returns it starts from zero deficit, not banked credit.
    drr.enqueue("a", "a1")
    drr.enqueue("b", "b10")
    first_two = {drr.next(), drr.next()}
    assert first_two == {"a1", "b10"}


def test_drr_variable_costs_respect_deficit():
    drr = DeficitRoundRobin(quantum=1.0)
    drr.set_weight("cheap", 1.0)
    drr.set_weight("bulky", 1.0)
    for j in range(30):
        drr.enqueue("cheap", f"c{j}", cost=1.0)
        drr.enqueue("bulky", f"b{j}", cost=3.0)
    for _ in range(40):
        drr.next()
    # Equal weights, 3x cost: bulky serves ~1/3 the items but equal work.
    assert abs(drr.served["cheap"] - drr.served["bulky"]) <= 3.0


def test_drr_empty_returns_none():
    drr = DeficitRoundRobin()
    assert drr.next() is None
    drr.enqueue("a", "x")
    assert len(drr) == 1
    assert drr.next() == "x"
    assert drr.next() is None
    assert len(drr) == 0


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
def test_token_bucket_rate_and_burst():
    bucket = TokenBucket(rate=10.0, burst=3.0, t0=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0          # burst exhausted
    retry = bucket.try_take(0.0)
    assert retry == pytest.approx(0.1)          # 1 token at 10/s
    assert bucket.throttled == 1
    assert bucket.try_take(0.1) == 0.0          # refilled exactly one
    assert bucket.try_take(0.1) > 0.0


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=100.0, burst=2.0, t0=0.0)
    bucket.try_take(1000.0)                     # long idle: capped at burst
    assert bucket.tokens == pytest.approx(1.0)  # burst 2 minus 1 taken
    assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) > 0.0


def test_tenant_throttled_is_an_overload():
    exc = TenantThrottled("acme", 0.05, priority=BATCH)
    assert isinstance(exc, Overloaded)
    assert exc.is_overload
    assert exc.tenant == "acme"
    assert exc.retry_after == pytest.approx(0.05)
    assert exc.resource == "tenant.acme"


# ----------------------------------------------------------------------
# Weighted-fair admission composition
# ----------------------------------------------------------------------
def _tenancy_cluster(**qos_by_tenant):
    cluster = BokiCluster(num_function_nodes=2, num_storage_nodes=3,
                          num_sequencer_nodes=3)
    hub = cluster.enable_tenancy()
    for tenant, qos in qos_by_tenant.items():
        hub.registry.register(tenant, **qos)
    return cluster, hub


def test_rate_limited_tenant_sheds_at_the_gateway():
    cluster, hub = _tenancy_cluster(capped={"rate": 5.0, "burst": 2.0})
    cluster.boot()

    def fn(ctx, arg):
        yield cluster.env.timeout(1e-4)
        return "ok"

    cluster.register_function("f", fn)

    def burst():
        ok = shed = 0
        for _ in range(6):
            try:
                yield from cluster.invoke("f", tenant="capped", policy=None)
                ok += 1
            except TenantThrottled:
                shed += 1
        return ok, shed

    ok, shed = cluster.drive(burst())
    # burst=2 tokens up front; trickle refill admits at most one more.
    assert ok <= 3
    assert shed >= 3
    snap = hub.fairness_snapshot()["tenants"]["capped"]
    assert snap["throttled"] == shed
    assert snap["shed_share"] == 1.0


def test_over_share_tenant_sheds_first_under_share_never_starved():
    """At the concurrency limit, the aggressor (over its weighted share)
    is shed; the victim (under its share) is admitted."""
    from repro.admission import AdaptiveLimiter

    cluster, hub = _tenancy_cluster(
        victim={"weight": 1.0}, aggressor={"weight": 1.0})
    ctl = cluster.enable_admission(
        limiter=AdaptiveLimiter(initial=10.0, min_limit=10.0, max_limit=10.0))
    cluster.boot()
    # Both active: equal weights split the limit 5/5. The aggressor is
    # far over its share; the victim is under.
    hub.state("aggressor").inflight = 9
    hub.state("victim").inflight = 1
    with pytest.raises(Overloaded):
        hub.admission_check(ctl, inflight=10, tenant="aggressor",
                            priority=INTERACTIVE)
    # Same global inflight: the under-share victim still gets in.
    hub.admission_check(ctl, inflight=10, tenant="victim",
                        priority=INTERACTIVE)
    snap = hub.fairness_snapshot()
    assert snap["tenants"]["aggressor"]["shed"] == 1
    assert snap["tenants"]["victim"]["shed"] == 0


def test_fair_share_respects_weights():
    from repro.admission import AdaptiveLimiter

    cluster, hub = _tenancy_cluster(
        gold={"weight": 3.0}, bronze={"weight": 1.0})
    ctl = cluster.enable_admission(
        limiter=AdaptiveLimiter(initial=8.0, min_limit=8.0, max_limit=8.0))
    cluster.boot()
    hub.state("gold").inflight = 5      # share = 8*3/4 = 6 -> under
    hub.state("bronze").inflight = 3    # share = 8*1/4 = 2 -> over
    hub.admission_check(ctl, inflight=8, tenant="gold")
    with pytest.raises(Overloaded):
        hub.admission_check(ctl, inflight=8, tenant="bronze")


def test_deadline_shed_applies_to_everyone():
    cluster, hub = _tenancy_cluster(vip={"weight": 100.0})
    ctl = cluster.enable_admission()
    cluster.boot()
    with pytest.raises(Overloaded):
        hub.admission_check(ctl, inflight=0, tenant="vip",
                            deadline=cluster.env.now)  # already hopeless
