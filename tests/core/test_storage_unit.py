"""Direct unit tests of storage-node handlers (replication, ordering,
out-of-order entry application, trims)."""

import pytest

from repro.core.config import BokiConfig
from repro.core.metalog import MetalogEntry, TrimCommand, freeze_progress
from repro.core.placement import build_term
from repro.core.storage import StorageNode
from repro.core.types import pack_seqnum
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def world():
    env = Environment()
    net = Network(env, RandomStreams(seed=37), jitter=0.0)
    config = BokiConfig()
    storage = StorageNode(env, net, "s0", config)
    for name in ["s1", "s2", "e0", "q0", "q1", "q2"]:
        net.register(Node(env, name))
    term = build_term(config, 1, ["e0"], ["s0", "s1", "s2"], ["q0", "q1", "q2"])
    storage.configure(term)
    caller = net.register(Node(env, "caller"))
    return env, net, storage, caller, term


def replicate(env, net, caller, local_id, data="x", tags=(2,), book=1):
    payload = {
        "term": 1, "log_id": 0, "shard": "e0", "local_id": local_id,
        "book_id": book, "tags": tuple(tags), "data": data, "seqnum": None,
    }
    proc = net.rpc(caller, "s0", "storage.replicate", payload, timeout=1.0)
    return env.run_until(proc, limit=60.0)


def entry(index, count, start_pos, trims=()):
    return MetalogEntry(
        index=index, progress=freeze_progress({"e0": count}),
        start_pos=start_pos, trims=tuple(trims),
    )


def deliver_entry(env, net, caller, storage, e):
    net.send(caller, "s0", "metalog.entry", {"term": 1, "log_id": 0, "entry": e})
    env.run(until=env.now + 0.01)


class TestReplication:
    def test_contiguous_prefix_tracking(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0)
        replicate(env, net, caller, 2)  # gap at 1
        assert storage._shard(1, 0, "e0").contiguous == 1
        replicate(env, net, caller, 1)
        assert storage._shard(1, 0, "e0").contiguous == 3

    def test_progress_reports_flow_to_primary(self, world):
        env, net, storage, caller, term = world
        reports = []
        primary = term.assignment(0).primary
        net.nodes[primary].handle(
            "seq.report_progress", lambda p: reports.append(p)
        )
        replicate(env, net, caller, 0)
        env.run(until=env.now + 0.01)
        assert reports
        assert reports[-1]["vector"] == {"e0": 1}


class TestOrdering:
    def test_entry_assigns_seqnums(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0, data="first")
        deliver_entry(env, net, caller, storage, entry(0, 1, 0))
        seqnum = pack_seqnum(1, 0, 0)
        assert storage._by_seqnum[seqnum]["data"] == "first"

    def test_out_of_order_entries_buffered(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0)
        replicate(env, net, caller, 1)
        # Entry 1 arrives before entry 0 (network reordering).
        deliver_entry(env, net, caller, storage, entry(1, 2, 1))
        assert storage._log_state(1, 0).applied == 0
        deliver_entry(env, net, caller, storage, entry(0, 1, 0))
        assert storage._log_state(1, 0).applied == 2
        assert pack_seqnum(1, 0, 1) in storage._by_seqnum

    def test_read_served_after_ordering(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0, data="readable")
        deliver_entry(env, net, caller, storage, entry(0, 1, 0))
        proc = net.rpc(caller, "s0", "storage.read",
                       {"seqnum": pack_seqnum(1, 0, 0)}, timeout=1.0)
        reply = env.run_until(proc, limit=60.0)
        assert reply["data"] == "readable"

    def test_read_unordered_record_fails(self, world):
        env, net, storage, caller, term = world
        from repro.sim.network import RpcError

        replicate(env, net, caller, 0)
        proc = net.rpc(caller, "s0", "storage.read",
                       {"seqnum": pack_seqnum(1, 0, 0)}, timeout=1.0)
        with pytest.raises(RpcError):
            env.run_until(proc, limit=60.0)


class TestTrims:
    def test_trim_command_reclaims_records(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0, tags=(2,), book=1)
        replicate(env, net, caller, 1, tags=(2,), book=1)
        deliver_entry(env, net, caller, storage, entry(0, 2, 0))
        trim = TrimCommand(book_id=1, tag=2, until_seqnum=pack_seqnum(1, 0, 0))
        deliver_entry(env, net, caller, storage, entry(1, 2, 2, trims=[trim]))
        assert storage.trimmed_count == 1
        assert pack_seqnum(1, 0, 0) not in storage._by_seqnum
        assert pack_seqnum(1, 0, 1) in storage._by_seqnum

    def test_trim_other_book_untouched(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0, book=1)
        replicate(env, net, caller, 1, book=9)
        deliver_entry(env, net, caller, storage, entry(0, 2, 0))
        trim = TrimCommand(book_id=1, tag=0, until_seqnum=pack_seqnum(1, 0, 5))
        deliver_entry(env, net, caller, storage, entry(1, 2, 2, trims=[trim]))
        assert storage.trimmed_count == 1
        assert pack_seqnum(1, 0, 1) in storage._by_seqnum


class TestMetaFetch:
    def test_fetch_meta_returns_contiguous_records(self, world):
        env, net, storage, caller, term = world
        replicate(env, net, caller, 0, tags=(4,), book=7)
        replicate(env, net, caller, 1, tags=(5,), book=7)
        proc = net.rpc(caller, "s0", "storage.fetch_meta",
                       {"term": 1, "log_id": 0, "shard": "e0", "from_local_id": 0},
                       timeout=1.0)
        metas = env.run_until(proc, limit=60.0)
        assert metas == {0: (7, (4,)), 1: (7, (5,))}


class TestAuxBackup:
    def test_backup_disabled_by_default(self, world):
        env, net, storage, caller, term = world
        net.send(caller, "s0", "storage.put_aux", {"seqnum": 1, "auxdata": "v"})
        env.run(until=env.now + 0.01)
        assert storage._aux_backup == {}

    def test_backup_stored_when_enabled(self):
        env = Environment()
        net = Network(env, RandomStreams(seed=38), jitter=0.0)
        config = BokiConfig(aux_backup=True)
        storage = StorageNode(env, net, "s0", config)
        caller = net.register(Node(env, "caller"))
        net.send(caller, "s0", "storage.put_aux", {"seqnum": 1, "auxdata": "v"})
        env.run(until=env.now + 0.01)
        assert storage._aux_backup == {1: "v"}
