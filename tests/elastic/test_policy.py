"""EWMA + hysteresis policy unit tests (pure state machine)."""

import pytest

from repro.elastic.policy import Ewma, HysteresisPolicy, PolicyConfig

pytestmark = pytest.mark.elastic


def test_ewma_seeds_and_smooths():
    ewma = Ewma(alpha=0.5)
    assert ewma.update(1.0) == 1.0
    assert ewma.update(0.0) == 0.5
    assert ewma.update(0.0) == 0.25


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        Ewma(alpha=0.0)
    with pytest.raises(ValueError):
        Ewma(alpha=1.5)


def _policy(**overrides):
    defaults = dict(
        high_watermark=0.75, low_watermark=0.30, alpha=1.0,
        breach_up=2, breach_down=3, cooldown_up=0.1, cooldown_down=0.5,
        min_nodes=1, max_nodes=8,
    )
    defaults.update(overrides)
    return HysteresisPolicy(PolicyConfig(**defaults))


def test_single_spike_does_not_scale():
    policy = _policy()
    assert policy.observe(0.0, 0.95, 2) == 0  # first breach: wait
    assert policy.observe(0.1, 0.50, 2) == 0  # back in band: reset
    assert policy.observe(0.2, 0.95, 2) == 0  # streak restarted
    assert policy.observe(0.3, 0.95, 2) > 0   # second consecutive breach


def test_proportional_scale_up_sizes_the_jump():
    policy = _policy()
    policy.observe(0.0, 1.5, 2)
    delta = policy.observe(0.1, 1.5, 2)
    # target = (0.75+0.30)/2 = 0.525 -> desired = ceil(2*1.5/0.525) = 6
    assert delta == 4


def test_scale_up_respects_max_nodes():
    policy = _policy(max_nodes=3)
    policy.observe(0.0, 2.0, 3)
    assert policy.observe(0.1, 2.0, 3) == 0


def test_scale_in_steps_down_one_after_streak():
    policy = _policy()
    assert policy.observe(0.0, 0.1, 4) == 0
    assert policy.observe(0.1, 0.1, 4) == 0
    assert policy.observe(0.2, 0.1, 4) == -1


def test_scale_in_respects_min_nodes():
    policy = _policy(min_nodes=2)
    for i in range(10):
        assert policy.observe(i * 0.1, 0.0, 2) == 0


def test_cooldown_blocks_consecutive_changes():
    policy = _policy()
    for i in range(3):
        policy.observe(i * 0.1, 0.1, 4)
    assert policy.observe(0.3, 0.1, 4) == -1
    policy.record_change(0.3)
    # The (longer) scale-in cooldown blocks further shrinking even though
    # the breach streak rebuilds immediately.
    for i in range(4, 8):
        assert policy.observe(i * 0.1, 0.1, 3) == 0
    # 0.5s after the change the cooldown expires and the streak stands.
    assert policy.observe(0.8, 0.1, 3) == -1


def test_asymmetric_cooldowns():
    policy = _policy()
    policy.record_change(0.0)
    # Scale-out needs only cooldown_up = 0.1s after a change.
    policy.observe(0.11, 2.0, 2)
    assert policy.observe(0.21, 2.0, 2) > 0


def test_watermark_validation():
    with pytest.raises(ValueError):
        PolicyConfig(high_watermark=0.3, low_watermark=0.5)
    with pytest.raises(ValueError):
        PolicyConfig(min_nodes=0)
    with pytest.raises(ValueError):
        PolicyConfig(min_nodes=4, max_nodes=2)
