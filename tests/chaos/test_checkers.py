"""Checker unit tests over hand-built histories.

Each checker is exercised both ways: a legal history passes, and a
deliberately broken one (stale read, duplicated effect, lost message) is
flagged — the checkers must have teeth.
"""

from math import inf

from repro.chaos.checkers import (
    _register_linearizable,
    check_exactly_once,
    check_metalog,
    check_queue_delivery,
    check_store_linearizability,
)
from repro.chaos.history import History, Op
from repro.sim.kernel import Environment


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt=1.0):
        self.now += dt
        return self.now


def make_history():
    return History(FakeClock())


def add_op(history, clock, client, kind, key, value=None, result=None,
           status="ok", duration=1.0):
    clock.tick(0.5)  # strict gap: each op finishes before the next begins
    op = history.invoke(client, kind, key, value)
    clock.tick(duration)
    if status == "ok":
        history.ok(op, result=result)
    elif status == "fail":
        history.fail(op, error="boom")
    return op


class TestRegisterLinearizable:
    def test_sequential_write_read(self):
        ops = [
            {"op_id": 0, "kind": "w", "val": "1", "t_inv": 0, "t_ret": 1},
            {"op_id": 1, "kind": "r", "val": "1", "t_inv": 2, "t_ret": 3},
        ]
        assert _register_linearizable(ops)

    def test_stale_read_rejected(self):
        ops = [
            {"op_id": 0, "kind": "w", "val": "1", "t_inv": 0, "t_ret": 1},
            {"op_id": 1, "kind": "w", "val": "2", "t_inv": 2, "t_ret": 3},
            {"op_id": 2, "kind": "r", "val": "1", "t_inv": 4, "t_ret": 5},
        ]
        assert not _register_linearizable(ops)

    def test_concurrent_writes_allow_either_order(self):
        for read_val in ("1", "2"):
            ops = [
                {"op_id": 0, "kind": "w", "val": "1", "t_inv": 0, "t_ret": 3},
                {"op_id": 1, "kind": "w", "val": "2", "t_inv": 0, "t_ret": 3},
                {"op_id": 2, "kind": "r", "val": read_val, "t_inv": 4, "t_ret": 5},
            ]
            assert _register_linearizable(ops)

    def test_indeterminate_write_may_take_effect_or_not(self):
        # The write never returned (client crashed); a later read may see
        # it or not — both must be accepted.
        for read_val in ("null", "1"):
            ops = [
                {"op_id": 0, "kind": "w", "val": "1", "t_inv": 0, "t_ret": inf},
                {"op_id": 1, "kind": "r", "val": read_val, "t_inv": 4, "t_ret": 5},
            ]
            assert _register_linearizable(ops)

    def test_read_of_never_written_value_rejected(self):
        ops = [
            {"op_id": 0, "kind": "w", "val": "1", "t_inv": 0, "t_ret": 1},
            {"op_id": 1, "kind": "r", "val": "42", "t_inv": 2, "t_ret": 3},
        ]
        assert not _register_linearizable(ops)


class TestStoreLinearizability:
    def test_legal_history_passes(self):
        clock = FakeClock()
        history = History(clock)
        add_op(history, clock, "c1", "store.put", "k", value={"v": 1})
        add_op(history, clock, "c1", "store.get", "k", result={"v": 1})
        result = check_store_linearizability(history)
        assert result.ok and result.checked == 2

    def test_stale_read_flagged(self):
        clock = FakeClock()
        history = History(clock)
        add_op(history, clock, "c1", "store.put", "k", value={"v": 1})
        add_op(history, clock, "c1", "store.put", "k", value={"v": 2})
        add_op(history, clock, "c2", "store.get", "k", result={"v": 1})
        result = check_store_linearizability(history)
        assert not result.ok
        assert "not linearizable" in result.violations[0]

    def test_keys_are_independent_registers(self):
        clock = FakeClock()
        history = History(clock)
        add_op(history, clock, "c1", "store.put", "a", value={"v": 1})
        add_op(history, clock, "c1", "store.put", "b", value={"v": 2})
        add_op(history, clock, "c1", "store.get", "a", result={"v": 1})
        add_op(history, clock, "c1", "store.get", "b", result={"v": 2})
        assert check_store_linearizability(history).ok

    def test_incomplete_write_tolerated(self):
        clock = FakeClock()
        history = History(clock)
        add_op(history, clock, "c1", "store.put", "k", value={"v": 1})
        add_op(history, clock, "c2", "store.put", "k", value={"v": 2},
               status="invoked")
        add_op(history, clock, "c1", "store.get", "k", result={"v": 1})
        assert check_store_linearizability(history).ok


class TestExactlyOnce:
    def test_clean_log_passes(self):
        log = [(("wf", 0), "t", "k0"), (("wf", 1), "t", "k1")]
        result = check_exactly_once(log, [("wf", 0), ("wf", 1)])
        assert result.ok and result.checked == 2

    def test_duplicate_effect_flagged(self):
        log = [(("wf", 0), "t", "k"), (("wf", 0), "t", "k")]
        result = check_exactly_once(log, [("wf", 0)])
        assert not result.ok
        assert "duplicate" in result.violations[0]

    def test_lost_effect_flagged(self):
        result = check_exactly_once([(("wf", 0), "t", "k")], [("wf", 0), ("wf", 1)])
        assert not result.ok
        assert any("lost write" in v for v in result.violations)


class TestQueueDelivery:
    def _push(self, history, clock, value, status="ok"):
        return add_op(history, clock, "p", "queue.push", "q", value=value,
                      status=status)

    def _pop(self, history, clock, value):
        return add_op(history, clock, "c", "queue.pop", "q", result=value)

    def test_clean_delivery_passes(self):
        clock = FakeClock()
        history = History(clock)
        self._push(history, clock, "m1")
        self._push(history, clock, "m2")
        self._pop(history, clock, "m1")
        self._pop(history, clock, "m2")
        assert check_queue_delivery(history, drained=True).ok

    def test_lost_message_flagged_when_drained(self):
        clock = FakeClock()
        history = History(clock)
        self._push(history, clock, "m1")
        self._push(history, clock, "m2")
        self._pop(history, clock, "m1")
        result = check_queue_delivery(history, drained=True)
        assert not result.ok
        assert "lost" in result.violations[0]

    def test_unacknowledged_push_may_be_absent(self):
        clock = FakeClock()
        history = History(clock)
        self._push(history, clock, "m1", status="invoked")
        assert check_queue_delivery(history, drained=True).ok

    def test_duplicate_delivery_flagged(self):
        clock = FakeClock()
        history = History(clock)
        self._push(history, clock, "m1")
        self._pop(history, clock, "m1")
        self._pop(history, clock, "m1")
        result = check_queue_delivery(history, drained=True)
        assert not result.ok
        assert "duplicate" in result.violations[0]

    def test_phantom_delivery_flagged(self):
        clock = FakeClock()
        history = History(clock)
        self._pop(history, clock, "ghost")
        result = check_queue_delivery(history, drained=False)
        assert not result.ok
        assert "phantom" in result.violations[0]


class TestMetalogChecker:
    def test_healthy_cluster_passes(self):
        from repro.core.cluster import BokiCluster

        c = BokiCluster(num_function_nodes=2, seed=7)
        c.boot()

        def flow():
            book = c.logbook(1)
            for i in range(10):
                yield from book.append(f"r{i}")
            return True

        assert c.drive(flow(), limit=60.0)
        result = check_metalog(c)
        assert result.ok and result.checked > 0

    def test_tampered_replica_flagged(self):
        from repro.core.cluster import BokiCluster

        c = BokiCluster(num_function_nodes=2, seed=7)
        c.boot()

        def flow():
            book = c.logbook(1)
            for i in range(10):
                yield from book.append(f"r{i}")
            return True

        assert c.drive(flow(), limit=60.0)
        # Corrupt one replica's second entry: fork its start_pos.
        qnode = c.sequencer_nodes[0]
        (key, replica) = sorted(qnode.replicas.items())[0]
        entries = replica.entries_from(0)
        assert len(entries) >= 2
        object.__setattr__(entries[1], "start_pos", entries[1].start_pos + 5)
        result = check_metalog(c)
        assert not result.ok
