"""Garbage-collector functions (§5.5).

The FaaS paradigm simplifies GC for shared-log storage: periodically
invoked collector functions reclaim dead records through logTrim. One
collector per support library:

- BokiFlow: trim the step records of completed workflows;
- BokiStore: trim records of deleted objects;
- BokiQueue: trim records of popped queue elements.
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.logbook import LogBook
from repro.core.types import MAX_SEQNUM
from repro.libs.bokiflow.env import step_tag
from repro.libs.bokiqueue.queue import BokiQueue, shard_tag
from repro.libs.bokistore.store import BokiStore, object_tag


def gc_workflow(book: LogBook, workflow_id: str, steps: int) -> Generator:
    """Trim a completed workflow's records.

    The collector verifies the workflow logged its completion marker, then
    trims every step tag (including the pre/post invoke tags) and the
    start/result markers. The ``done`` marker is retained as a tombstone.
    Returns True if the workflow was trimmed."""
    done_tag = step_tag(workflow_id, -1, "done")
    done = yield from book.read_next(tag=done_tag, min_seqnum=0)
    if done is None:
        return False  # still running (or never ran): not safe to trim
    for suffix in ("start", "result"):
        yield from book.trim(MAX_SEQNUM, tag=step_tag(workflow_id, -1, suffix))
    for step in range(steps):
        for suffix in ("", "cond", "pre", "post"):
            yield from book.trim(MAX_SEQNUM, tag=step_tag(workflow_id, step, suffix))
    return True


def gc_deleted_objects(book: LogBook, store: BokiStore, names: List[str]) -> Generator:
    """Trim records of deleted BokiStore objects: everything up to and
    including each object's deletion marker."""
    trimmed = []
    for name in names:
        view = yield from store.get_object(name)
        if view.exists:
            continue  # recreated since deletion: keep
        tail = yield from book.read_prev(tag=object_tag(name), max_seqnum=MAX_SEQNUM)
        if tail is None:
            continue  # nothing left
        if tail.data.get("kind") != "delete_obj":
            continue
        yield from book.trim(tail.seqnum, tag=object_tag(name))
        trimmed.append(name)
    return trimmed


def gc_queue(queue: BokiQueue) -> Generator:
    """Trim records of popped queue elements.

    Replay is deterministic only from an *empty point* — a record after
    which the shard held no pending pushes — because a pop record replayed
    without the (older) push it matched would steal a newer one. So the
    collector scans each shard from its current start (an empty point by
    induction: we only ever trim at empty points), finds the latest record
    at which the shard was empty, and trims up to it."""
    trimmed_upto = []
    for shard in range(queue.num_shards):
        from repro.libs.bokiqueue.queue import _ShardState

        tag = shard_tag(queue.name, shard)
        records = yield from queue.book.iter_records(tag=tag)
        state = _ShardState()
        last_empty = None
        for record in records:
            state.apply(record)
            if not state.pending:
                last_empty = record.seqnum
        if last_empty is not None:
            yield from queue.book.trim(last_empty, tag=tag)
        trimmed_upto.append(last_empty)
    return trimmed_upto
