"""Unit tests for the metalog state machine and delta-set ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metalog import (
    Metalog,
    MetalogEntry,
    SealedError,
    TrimCommand,
    freeze_progress,
)
from repro.core.ordering import delta_set, delta_size, merge_progress_by_shard, position_of


def entry(index, progress, start_pos, trims=()):
    return MetalogEntry(
        index=index,
        progress=freeze_progress(progress),
        start_pos=start_pos,
        trims=tuple(trims),
    )


class TestMetalog:
    def test_append_and_length(self):
        ml = Metalog(log_id=0, term_id=1)
        ml.append(entry(0, {"a": 2}, 0))
        assert len(ml) == 1
        assert ml.tail_progress() == {"a": 2}

    def test_append_wrong_index_rejected(self):
        ml = Metalog(0, 1)
        with pytest.raises(ValueError):
            ml.append(entry(1, {"a": 1}, 0))

    def test_progress_regression_rejected(self):
        ml = Metalog(0, 1)
        ml.append(entry(0, {"a": 5}, 0))
        with pytest.raises(ValueError):
            ml.append(entry(1, {"a": 3}, 5))

    def test_seal_blocks_appends(self):
        ml = Metalog(0, 1)
        ml.append(entry(0, {"a": 1}, 0))
        assert ml.seal() == 1
        with pytest.raises(SealedError):
            ml.append(entry(1, {"a": 2}, 1))

    def test_total_ordered(self):
        ml = Metalog(0, 1)
        ml.append(entry(0, {"a": 2, "b": 1}, 0))
        assert ml.total_ordered() == 3
        ml.append(entry(1, {"a": 4, "b": 1}, 3))
        assert ml.total_ordered() == 5

    def test_entries_from(self):
        ml = Metalog(0, 1)
        ml.append(entry(0, {"a": 1}, 0))
        ml.append(entry(1, {"a": 2}, 1))
        assert [e.index for e in ml.entries_from(1)] == [1]

    def test_empty_tail_progress(self):
        assert Metalog(0, 1).tail_progress() == {}


class TestDeltaSet:
    def test_paper_figure3_example(self):
        """Reproduce Figure 3: shards a, b, c; metalog entries (2,1,1),
        (3,1,3), (5,3,4), (5,4,6)."""
        entries = [
            entry(0, {"a": 2, "b": 1, "c": 1}, 0),
            entry(1, {"a": 3, "b": 1, "c": 3}, 4),
            entry(2, {"a": 5, "b": 3, "c": 4}, 7),
            entry(3, {"a": 5, "b": 4, "c": 6}, 12),
        ]
        prev = {}
        total = []
        for e in entries:
            total.extend((s, l) for s, l, _ in delta_set(prev, e))
            prev = e.progress_dict()
        # Figure 3 total order: 0a 1a 0b 0c 2a 1c 2c 3a 4a 1b 2b 3c 3b 4c 5c
        expected = [
            ("a", 0), ("a", 1), ("b", 0), ("c", 0),
            ("a", 2), ("c", 1), ("c", 2),
            ("a", 3), ("a", 4), ("b", 1), ("b", 2), ("c", 3),
            ("b", 3), ("c", 4), ("c", 5),
        ]
        assert total == expected

    def test_positions_consecutive(self):
        e = entry(0, {"a": 2, "b": 2}, 10)
        positions = [p for _, _, p in delta_set({}, e)]
        assert positions == [10, 11, 12, 13]

    def test_delta_size(self):
        e = entry(1, {"a": 5, "b": 3}, 0)
        assert delta_size({"a": 2, "b": 3}, e) == 3

    def test_position_of_matches_delta_set(self):
        prev = {"a": 1, "b": 0}
        e = entry(1, {"a": 3, "b": 2}, 7)
        for shard, local_id, pos in delta_set(prev, e):
            assert position_of(prev, e, shard, local_id) == pos

    def test_position_of_outside_delta_is_none(self):
        prev = {"a": 1}
        e = entry(1, {"a": 3}, 0)
        assert position_of(prev, e, "a", 0) is None  # already ordered
        assert position_of(prev, e, "a", 3) is None  # not yet ordered
        assert position_of(prev, e, "zz", 0) is None  # unknown shard

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 5), min_size=1
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 5), min_size=1
        ),
    )
    def test_delta_never_reorders_within_shard(self, base, incr):
        prev = dict(base)
        cur = {s: prev.get(s, 0) + incr.get(s, 0) for s in set(prev) | set(incr)}
        e = entry(1, cur, 100)
        last_per_shard = {}
        for shard, local_id, pos in delta_set(prev, e):
            if shard in last_per_shard:
                last_lid, last_pos = last_per_shard[shard]
                assert local_id == last_lid + 1
                assert pos > last_pos
            last_per_shard[shard] = (local_id, pos)


class TestMergeProgress:
    def test_min_over_backers(self):
        reports = {
            "s1": {"a": 5, "b": 2},
            "s2": {"a": 3, "b": 4},
            "s3": {"a": 4, "b": 3},
        }
        shard_storage = {"a": ["s1", "s2", "s3"], "b": ["s1", "s2", "s3"]}
        assert merge_progress_by_shard(reports, shard_storage) == {"a": 3, "b": 2}

    def test_unreported_node_counts_zero(self):
        reports = {"s1": {"a": 5}}
        shard_storage = {"a": ["s1", "s2"]}
        assert merge_progress_by_shard(reports, shard_storage) == {"a": 0}

    def test_shard_subsets(self):
        """A node not backing a shard does not limit that shard (the paper's
        'infinity' elements)."""
        reports = {"s1": {"a": 5}, "s2": {"b": 7}}
        shard_storage = {"a": ["s1"], "b": ["s2"]}
        assert merge_progress_by_shard(reports, shard_storage) == {"a": 5, "b": 7}

    def test_empty(self):
        assert merge_progress_by_shard({}, {}) == {}


class TestTrimCommand:
    def test_carried_in_entry(self):
        t = TrimCommand(book_id=1, tag=0, until_seqnum=100)
        e = entry(0, {"a": 1}, 0, trims=[t])
        assert e.trims == (t,)
