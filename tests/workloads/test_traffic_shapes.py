"""Traffic shapes: rate functions, thinning arrivals, Zipfian sampling."""

import random

import pytest

from repro.sim.kernel import Environment
from repro.workloads.harness import (
    DiurnalShape,
    FlashCrowdShape,
    ZipfianSampler,
    run_shaped_open_loop,
)


def test_diurnal_shape_swings_between_base_and_peak():
    shape = DiurnalShape(base_rate=100, peak_rate=500, period=10.0)
    assert shape.rate_at(0.0) == pytest.approx(100)
    assert shape.rate_at(5.0) == pytest.approx(500)
    assert shape.rate_at(10.0) == pytest.approx(100)
    assert 100 <= shape.rate_at(2.5) <= 500
    assert shape.max_rate == 500


def test_flash_crowd_shape_piecewise():
    shape = FlashCrowdShape(base_rate=100, peak_rate=700, surge_at=1.0,
                            ramp=0.2, hold=0.5, decay=0.3)
    assert shape.rate_at(0.0) == 100
    assert shape.rate_at(1.1) == pytest.approx(400)   # mid-ramp
    assert shape.rate_at(1.5) == 700                  # holding
    assert shape.rate_at(1.85) == pytest.approx(400)  # mid-decay
    assert shape.rate_at(3.0) == 100


def test_shape_validation():
    with pytest.raises(ValueError):
        DiurnalShape(base_rate=500, peak_rate=100, period=10)
    with pytest.raises(ValueError):
        DiurnalShape(base_rate=1, peak_rate=2, period=0)
    with pytest.raises(ValueError):
        FlashCrowdShape(base_rate=500, peak_rate=100, surge_at=0)


def test_shaped_open_loop_tracks_the_shape():
    env = Environment()
    shape = FlashCrowdShape(base_rate=200, peak_rate=2000, surge_at=1.0,
                            ramp=0.2, hold=0.8, decay=0.2)
    rng = random.Random(42)

    def op(i):
        yield env.timeout(0.001)

    result = run_shaped_open_loop(env, op, shape, duration=3.0, rng=rng)
    assert result.completed == result.extra["launched"] > 0
    offered = result.extra["offered_series"]
    base = [v for t, v in offered.points if t < 0.9]
    surge = [v for t, v in offered.points if 1.3 <= t < 1.9]
    assert sum(base) / len(base) < 400
    assert sum(surge) / len(surge) > 1200, "surge must be visible in arrivals"
    # Latency series timestamps are relative to measurement start.
    series = result.extra["latency_series"]
    assert len(series) == result.completed
    assert all(0 <= t <= 3.5 for t, _ in series.points)


def test_shaped_open_loop_deterministic_per_seed():
    def run(seed):
        env = Environment()
        shape = DiurnalShape(base_rate=100, peak_rate=400, period=2.0)

        def op(i):
            yield env.timeout(0.002)

        result = run_shaped_open_loop(
            env, op, shape, duration=2.0, rng=random.Random(seed)
        )
        return result.completed, result.latencies.samples

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_zipfian_sampler_is_skewed_and_deterministic():
    sampler = ZipfianSampler(n=1000, theta=0.99)
    rng = random.Random(11)
    samples = [sampler.sample(rng) for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    hot = sum(1 for s in samples if s < 10)
    assert hot / len(samples) > 0.3, "zipf(0.99): top-1% keys dominate"
    rng_b = random.Random(11)
    assert samples == [sampler.sample(rng_b) for _ in range(5000)]


def test_zipfian_single_key():
    sampler = ZipfianSampler(n=1)
    rng = random.Random(0)
    assert {sampler.sample(rng) for _ in range(100)} == {0}


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianSampler(n=0)
    with pytest.raises(ValueError):
        ZipfianSampler(n=10, theta=1.0)
