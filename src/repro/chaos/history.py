"""Global operation history for guarantee checking.

Jepsen-style: every client operation is recorded as an *invoke* at its
start and an *ok*/*fail* completion at its end, with virtual timestamps.
An operation whose client crashed (or that never returned before the run
ended) stays in the ``invoked`` state — indeterminate: it may or may not
have taken effect, and the checkers must accept both possibilities.

Client libraries carry an optional ``history`` attribute (duck-typed
against this class) so recording costs nothing when chaos testing is off.
"""

from __future__ import annotations

import itertools
from math import inf
from typing import Any, List, Optional

#: Operation states (Jepsen's :invoke / :ok / :fail).
INVOKED = "invoked"
OK = "ok"
FAIL = "fail"


class Op:
    """One client operation's lifecycle."""

    __slots__ = (
        "op_id", "client", "kind", "key", "value",
        "t_invoke", "t_return", "status", "result", "error",
    )

    def __init__(self, op_id: int, client: str, kind: str, key: str,
                 value: Any, t_invoke: float):
        self.op_id = op_id
        self.client = client
        self.kind = kind          # e.g. "store.put", "queue.pop"
        self.key = key            # object name / queue name / workflow id
        self.value = value        # argument (what a write writes)
        self.t_invoke = t_invoke
        self.t_return = inf       # finite once completed
        self.status = INVOKED
        self.result = None        # what the operation returned
        self.error = None

    @property
    def determinate(self) -> bool:
        """True when the operation definitely completed (ok)."""
        return self.status == OK

    def to_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "client": self.client,
            "kind": self.kind,
            "key": self.key,
            "value": self.value,
            "t_invoke": self.t_invoke,
            "t_return": None if self.t_return == inf else self.t_return,
            "status": self.status,
            "result": self.result,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return f"<Op {self.op_id} {self.client} {self.kind}({self.key}) {self.status}>"


class History:
    """Append-only operation log with virtual timestamps."""

    def __init__(self, env):
        self.env = env
        self.ops: List[Op] = []
        self._ids = itertools.count(1)

    def invoke(self, client: str, kind: str, key: str, value: Any = None) -> Op:
        op = Op(next(self._ids), client, kind, key, value, self.env.now)
        self.ops.append(op)
        return op

    def ok(self, op: Op, result: Any = None) -> Op:
        op.status = OK
        op.result = result
        op.t_return = self.env.now
        return op

    def fail(self, op: Op, error: Optional[str] = None) -> Op:
        # A failed operation is still *indeterminate* for writes: an RPC
        # timeout does not prove the append never landed. Checkers treat
        # fail like invoked (may or may not have taken effect).
        op.status = FAIL
        op.error = error
        op.t_return = self.env.now
        return op

    def of_kind(self, *kinds: str) -> List[Op]:
        return [op for op in self.ops if op.kind in kinds]

    def to_dicts(self) -> List[dict]:
        """Deterministic dump (invocation order = op_id order)."""
        return [op.to_dict() for op in self.ops]

    def __len__(self) -> int:
        return len(self.ops)
