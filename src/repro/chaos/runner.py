"""Scenario runner + verdict artifacts.

Verdicts follow the ``repro.obs.bench`` artifact conventions: pure-JSON
documents serialized with sorted keys, fixed separators, and a trailing
newline, containing no wall-clock state — so the same scenario + seed
produces a byte-identical file (the determinism guarantee CI relies on).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.chaos.scenarios import SCENARIOS, Scenario, ScenarioResult

SCHEMA = "repro.chaos/2"
DEFAULT_VERDICT_DIR = "bench/chaos"
VERDICT_DIR_ENV = "REPRO_CHAOS_DIR"


def run_scenario(name: str, seed: int = 0) -> Dict[str, Any]:
    """Execute one scenario and return its verdict document."""
    try:
        scenario: Scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    result: ScenarioResult = scenario.fn(seed)
    checks = [c.to_dict() for c in result.checks]
    # Sanity violations ("the faults never overlapped the load") always
    # fail the verdict; they never satisfy an expect_violations scenario —
    # only guarantee checkers can provide the expected violations.
    sanity = sum(len(c["violations"]) for c in checks
                 if c["name"] == "scenario-sanity")
    violations = sum(len(c["violations"]) for c in checks
                     if c["name"] != "scenario-sanity")
    if scenario.expect_violations:
        passed = sanity == 0 and violations > 0
    else:
        passed = sanity == 0 and violations == 0
    return {
        "schema": SCHEMA,
        "scenario": name,
        "description": scenario.description,
        "seed": seed,
        "expect_violations": scenario.expect_violations,
        "violations": violations,
        "passed": passed,
        "checks": checks,
        "timeline": result.timeline,
        "stats": result.stats,
        # schema 2: liveness metrics (availability + RTO) for recovery
        # scenarios; None for pure-safety scenarios.
        "recovery": result.recovery,
    }


def verdict_to_json(doc: Dict[str, Any]) -> str:
    """Deterministic serialization (mirrors BenchmarkArtifact.to_json)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def validate_verdict(doc: Dict[str, Any]) -> None:
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        problems.append("scenario missing")
    if not isinstance(doc.get("seed"), int):
        problems.append("seed missing or not an int")
    if not isinstance(doc.get("passed"), bool):
        problems.append("passed missing or not a bool")
    if not isinstance(doc.get("checks"), list) or not doc.get("checks"):
        problems.append("checks missing or empty")
    else:
        for check in doc["checks"]:
            if not isinstance(check, dict) or "name" not in check or "violations" not in check:
                problems.append("malformed check entry")
    if not isinstance(doc.get("timeline"), list):
        problems.append("timeline missing or not a list")
    if not isinstance(doc.get("stats"), dict):
        problems.append("stats missing or not an object")
    if "recovery" not in doc:
        problems.append("recovery missing (schema 2)")
    elif doc["recovery"] is not None and not isinstance(doc["recovery"], dict):
        problems.append("recovery must be null or an object")
    if problems:
        raise ValueError("invalid verdict: " + "; ".join(problems))


def write_verdict(doc: Dict[str, Any], directory: Optional[str] = None) -> str:
    """Write ``chaos_<scenario>_seed<seed>.json``; returns the path."""
    validate_verdict(doc)
    directory = directory or os.environ.get(VERDICT_DIR_ENV, DEFAULT_VERDICT_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"chaos_{doc['scenario']}_seed{doc['seed']}.json")
    with open(path, "w") as handle:
        handle.write(verdict_to_json(doc))
    return path


def load_verdict(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    validate_verdict(doc)
    return doc
