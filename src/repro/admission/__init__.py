"""repro.admission — deterministic overload control, end to end.

The admission layer keeps the cluster *useful* under saturating load:
an adaptive concurrency limiter plus deadline-aware early rejection at
the gateway, bounded inflight windows with CoDel-style queue-delay
shedding at engines and storage, backpressure propagating storage ->
engine -> gateway, two priority classes (batch sheds first), and a
retry-after contract with ``repro.resil`` that suppresses retry storms
instead of feeding them. Enable with ``BokiCluster.enable_admission()``;
see ``docs/overload.md`` for the model and tuning guidance.
"""

from repro.admission.controller import (
    ENGINE_WINDOW,
    STORAGE_WINDOW,
    AdmissionController,
    NodeAdmission,
)
from repro.admission.errors import (
    BATCH,
    INTERACTIVE,
    PRIORITIES,
    Overloaded,
    is_overload,
    retry_after_hint,
)
from repro.admission.limiter import AdaptiveLimiter
from repro.admission.window import BoundedWindow, CoDelShedder

__all__ = [
    "AdmissionController",
    "AdaptiveLimiter",
    "BATCH",
    "BoundedWindow",
    "CoDelShedder",
    "ENGINE_WINDOW",
    "INTERACTIVE",
    "NodeAdmission",
    "Overloaded",
    "PRIORITIES",
    "STORAGE_WINDOW",
    "is_overload",
    "retry_after_hint",
]
