"""Unit tests for the simulated network and RPC layer."""

import pytest

from repro.sim import Environment, Network, Node, RpcError, RpcTimeout
from repro.sim.randvar import RandomStreams


def make_net(rtt=100e-6, jitter=0.0, rpc_timeout=0.5):
    env = Environment()
    net = Network(env, RandomStreams(seed=1), rtt=rtt, jitter=jitter, rpc_timeout=rpc_timeout)
    a = net.register(Node(env, "a"))
    b = net.register(Node(env, "b"))
    return env, net, a, b


def test_rpc_round_trip_value():
    env, net, a, b = make_net()
    b.handle("echo", lambda payload: payload.upper())
    results = []

    def caller(env):
        value = yield net.rpc(a, b, "echo", "hi")
        results.append((value, env.now))

    env.process(caller(env))
    env.run()
    assert results[0][0] == "HI"
    # One round trip at rtt=100us, zero jitter.
    assert results[0][1] == pytest.approx(100e-6, rel=0.01)


def test_rpc_generator_handler():
    env, net, a, b = make_net()

    def slow_handler(payload):
        yield env.timeout(0.01)
        return payload * 2

    b.handle("double", slow_handler)
    results = []

    def caller(env):
        value = yield net.rpc(a, b, "double", 21)
        results.append((value, env.now))

    env.process(caller(env))
    env.run()
    assert results[0][0] == 42
    assert results[0][1] == pytest.approx(0.01 + 100e-6, rel=0.01)


def test_rpc_handler_exception_becomes_rpc_error():
    env, net, a, b = make_net()

    def bad(payload):
        raise ValueError("nope")

    b.handle("bad", bad)
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "bad")
        except RpcError as exc:
            caught.append(exc)

    env.process(caller(env))
    env.run()
    assert len(caught) == 1
    assert isinstance(caught[0].cause, ValueError)


def test_rpc_to_dead_node_times_out():
    env, net, a, b = make_net(rpc_timeout=0.2)
    b.handle("echo", lambda p: p)
    b.crash()
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "echo", "x")
        except RpcTimeout:
            caught.append(env.now)

    env.process(caller(env))
    env.run()
    assert caught == [pytest.approx(0.2)]


def test_rpc_across_partition_times_out():
    env, net, a, b = make_net(rpc_timeout=0.1)
    b.handle("echo", lambda p: p)
    net.partition("a", "b")
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "echo", "x")
        except RpcTimeout:
            caught.append(True)

    env.process(caller(env))
    env.run()
    assert caught == [True]


def test_partition_heal_restores_traffic():
    env, net, a, b = make_net()
    b.handle("echo", lambda p: p)
    net.partition("a", "b")
    net.heal("a", "b")
    results = []

    def caller(env):
        results.append((yield net.rpc(a, b, "echo", "ok")))

    env.process(caller(env))
    env.run()
    assert results == ["ok"]


def test_node_crash_mid_handler_fails_fast():
    # A crash while the call is in flight resolves the waiter immediately
    # (fail-fast), not at the full RPC deadline.
    env, net, a, b = make_net(rpc_timeout=0.3)

    def slow(payload):
        yield env.timeout(0.05)
        return "should never arrive"

    b.handle("slow", slow)
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "slow")
        except RpcTimeout:
            caught.append(env.now)

    def killer(env):
        yield env.timeout(0.01)
        b.crash()

    env.process(caller(env))
    env.process(killer(env))
    env.run()
    assert caught == [pytest.approx(0.01)]


def test_rpc_to_already_dead_node_waits_full_timeout():
    # Fail-fast applies only to crashes *during* the call: a destination
    # already down when the call starts behaves like a silent drop and the
    # caller waits out its configured deadline.
    env, net, a, b = make_net(rpc_timeout=0.3)
    b.handle("echo", lambda p: p)
    b.crash()
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "echo")
        except RpcTimeout:
            caught.append(env.now)

    env.process(caller(env))
    env.run()
    assert caught == [pytest.approx(0.3)]


def test_crash_fail_fast_many_waiters_no_hang():
    # Regression for the drive-limit hang: many callers blocked on a long
    # deadline all resolve at crash time instead of serialising on the
    # global run limit.
    env, net, a, b = make_net(rpc_timeout=100.0)

    def never(payload):
        yield env.timeout(1e9)

    b.handle("never", never)
    resolved = []

    def caller(env, i):
        try:
            yield net.rpc(a, b, "never", i)
        except RpcTimeout:
            resolved.append((i, env.now))

    for i in range(5):
        env.process(caller(env, i))

    def killer(env):
        yield env.timeout(0.5)
        b.crash()

    env.process(killer(env))
    env.run(until=2.0)
    assert sorted(i for i, _ in resolved) == [0, 1, 2, 3, 4]
    assert all(t == pytest.approx(0.5) for _, t in resolved)


def test_one_way_send_runs_handler():
    env, net, a, b = make_net()
    seen = []
    b.handle("note", lambda p: seen.append(p))
    a_proc_seen = []

    def sender(env):
        net.send(a, b, "note", {"k": 1})
        a_proc_seen.append(env.now)
        yield env.timeout(0.01)

    env.process(sender(env))
    env.run()
    assert seen == [{"k": 1}]
    assert a_proc_seen == [0.0]  # send() does not block the sender


def test_send_from_dead_node_dropped():
    env, net, a, b = make_net()
    seen = []
    b.handle("note", lambda p: seen.append(p))
    a.crash()
    net.send(a, b, "note", 1)
    env.run()
    assert seen == []


def test_unknown_handler_is_rpc_error():
    env, net, a, b = make_net()
    caught = []

    def caller(env):
        try:
            yield net.rpc(a, b, "missing")
        except RpcError as exc:
            caught.append(exc)

    env.process(caller(env))
    env.run()
    assert len(caught) == 1


def test_duplicate_node_name_rejected():
    env = Environment()
    net = Network(env)
    net.register(Node(env, "x"))
    with pytest.raises(ValueError):
        net.register(Node(env, "x"))


def test_delay_is_positive_with_jitter():
    env = Environment()
    net = Network(env, RandomStreams(seed=3), rtt=10e-6, jitter=50e-6)
    for _ in range(1000):
        assert net.one_way_delay() >= 1e-6


def test_message_count_and_trace_hook():
    env, net, a, b = make_net()
    b.handle("echo", lambda p: p)
    traced = []
    net.trace_hook = traced.append

    def caller(env):
        yield net.rpc(a, b, "echo", 1)

    env.process(caller(env))
    env.run()
    assert net.messages_sent == 1
    assert traced[0].method == "echo"


def test_concurrent_rpcs_independent():
    env, net, a, b = make_net()
    b.handle("id", lambda p: p)
    results = []

    def caller(env, i):
        value = yield net.rpc(a, b, "id", i)
        results.append(value)

    for i in range(20):
        env.process(caller(env, i))
    env.run()
    assert sorted(results) == list(range(20))
