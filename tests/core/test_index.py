"""Unit tests for the log index (§4.4, Figure 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.index import ALL_TAG, LogIndex
from repro.core.metalog import TrimCommand


def make_index_with(records):
    """records: list of (book_id, tags, seqnum, shard)."""
    index = LogIndex(log_id=0)
    for book_id, tags, seqnum, shard in records:
        index.add_record(book_id, tags, seqnum, shard)
    return index


class TestReads:
    def test_read_next_finds_first_at_or_after(self):
        index = make_index_with([
            (3, [2], 8, "a"),
            (3, [2], 9, "a"),
            (3, [2], 12, "b"),
        ])
        assert index.read_next(3, 2, 8) == 8
        assert index.read_next(3, 2, 10) == 12
        assert index.read_next(3, 2, 13) is None

    def test_read_prev_finds_last_at_or_before(self):
        index = make_index_with([
            (3, [2], 8, "a"),
            (3, [2], 12, "b"),
        ])
        assert index.read_prev(3, 2, 20) == 12
        assert index.read_prev(3, 2, 11) == 8
        assert index.read_prev(3, 2, 7) is None

    def test_paper_figure4_workflow(self):
        """Figure 4: row (book=3, tag=2) = [8, 6, 7, 9, 10] sorted; a read
        with min_seqnum=8 returns 9... the figure's query result is 9 for
        min_seqnum=8 excluded-8 semantics aside: we verify seek semantics on
        the sorted row [6, 7, 8, 9, 10]."""
        index = make_index_with([
            (3, [2], s, "a") for s in [8, 6, 7, 9, 10]
        ])
        assert index.read_next(3, 2, 8) == 8
        assert index.read_next(3, 2, 9) == 9

    def test_rows_isolated_by_book(self):
        index = make_index_with([
            (1, [5], 10, "a"),
            (2, [5], 11, "a"),
        ])
        assert index.read_next(1, 5, 0) == 10
        assert index.read_next(2, 5, 0) == 11
        assert index.read_next(3, 5, 0) is None

    def test_rows_isolated_by_tag(self):
        index = make_index_with([
            (1, [5], 10, "a"),
            (1, [6], 11, "a"),
        ])
        assert index.read_next(1, 5, 0) == 10
        assert index.read_next(1, 6, 0) == 11

    def test_all_tag_row_contains_everything(self):
        index = make_index_with([
            (1, [5], 10, "a"),
            (1, [6], 11, "a"),
            (1, [], 12, "a"),
        ])
        assert index.range(1, ALL_TAG) == [10, 11, 12]

    def test_multi_tag_record_in_all_rows(self):
        index = make_index_with([(1, [5, 6], 10, "a")])
        assert index.read_next(1, 5, 0) == 10
        assert index.read_next(1, 6, 0) == 10
        assert index.read_next(1, ALL_TAG, 0) == 10

    def test_out_of_order_insertion(self):
        index = LogIndex(0)
        index.add_record(1, [], 20, "a")
        index.add_record(1, [], 10, "a")
        assert index.range(1, ALL_TAG) == [10, 20]

    def test_duplicate_insertion_ignored(self):
        index = LogIndex(0)
        index.add_record(1, [], 10, "a")
        index.add_record(1, [], 10, "a")
        assert index.range(1, ALL_TAG) == [10]

    def test_shard_of(self):
        index = make_index_with([(1, [], 10, "shard-x")])
        assert index.shard_of(10) == "shard-x"
        assert index.shard_of(11) is None

    def test_range_bounds(self):
        index = make_index_with([(1, [2], s, "a") for s in [5, 10, 15, 20]])
        assert index.range(1, 2, 6, 19) == [10, 15]
        assert index.range(1, 2, 10, 15) == [10, 15]


class TestTrims:
    def test_trim_tag_removes_prefix(self):
        index = make_index_with([(1, [2], s, "a") for s in [5, 10, 15]])
        index.apply_trim(TrimCommand(book_id=1, tag=2, until_seqnum=10))
        assert index.range(1, 2) == [15]

    def test_trim_whole_book_with_all_tag(self):
        index = make_index_with([
            (1, [2], 5, "a"),
            (1, [3], 6, "a"),
            (1, [2], 15, "a"),
        ])
        index.apply_trim(TrimCommand(book_id=1, tag=ALL_TAG, until_seqnum=10))
        assert index.range(1, ALL_TAG) == [15]
        assert index.range(1, 2) == [15]
        assert index.range(1, 3) == []

    def test_trim_does_not_touch_other_books(self):
        index = make_index_with([
            (1, [2], 5, "a"),
            (9, [2], 6, "a"),
        ])
        index.apply_trim(TrimCommand(book_id=1, tag=2, until_seqnum=100))
        assert index.range(9, 2) == [6]

    def test_trim_reports_unreachable_records(self):
        index = make_index_with([(1, [2], 5, "a"), (1, [2], 15, "a")])
        dropped = index.apply_trim(TrimCommand(1, ALL_TAG, 10))
        assert dropped == [5]
        assert index.record_count == 1

    def test_record_reachable_via_other_tag_not_dropped(self):
        """Trimming one tag must not drop a record still reachable via
        another of its tags."""
        index = make_index_with([(1, [2, 3], 5, "a")])
        dropped = index.apply_trim(TrimCommand(1, 2, 10))
        assert dropped == []
        assert index.read_next(1, 3, 0) == 5


@given(
    st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 4), st.integers(1, 1000)),
        min_size=1,
        max_size=60,
        unique_by=lambda t: t[2],
    )
)
def test_read_next_prev_consistent_property(records):
    """read_next and read_prev agree with a brute-force scan."""
    index = LogIndex(0)
    for book, tag, seqnum in records:
        index.add_record(book, [tag], seqnum, "a")
    for book, tag, seqnum in records:
        row = sorted(s for b, t, s in records if b == book and t == tag)
        for probe in [0, seqnum - 1, seqnum, seqnum + 1, 2000]:
            expected_next = next((s for s in row if s >= probe), None)
            expected_prev = next((s for s in reversed(row) if s <= probe), None)
            assert index.read_next(book, tag, probe) == expected_next
            assert index.read_prev(book, tag, probe) == expected_prev
