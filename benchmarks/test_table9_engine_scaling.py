"""Table 9: scaling read-only transactions with LogBook engines (§7.5).

Paper: Retwis GetTimeline (read-only txns) under a fixed NewTweet write
rate; adding function nodes 8 -> 48 (each engine indexing the log) scales
read throughput 4.63x with 3 fixed storage nodes — reads are served by the
engines' indices and caches, not the storage fleet.

Scaled: 2/4/8 function nodes, fixed write rate, read-only txn clients
proportional to engines.
"""

import pytest

from benchmarks._common import emit_artifact, make_cluster, print_table, run_once, throughput
from benchmarks._retwis_common import RetwisRun
from repro.libs.bokistore import BokiStore
from repro.sim.kernel import Interrupt
from repro.workloads.retwis import RetwisBokiStore

ENGINE_COUNTS = [2, 4, 8]
READERS_PER_ENGINE = 12
WRITE_RATE = 300.0  # NewTweet/s, fixed across scales
DURATION = 0.25
NUM_USERS = 60


def run_scale(num_engines):
    cluster = make_cluster(
        num_function_nodes=num_engines,
        num_storage_nodes=3,
        index_engines_per_log=num_engines,
        workers_per_node=24,
    )
    env = cluster.env
    engines = list(cluster.engines.values())

    def backend_for(engine):
        return RetwisBokiStore(
            BokiStore(cluster.logbook(60, engine=engine)), num_users=NUM_USERS
        )

    init = backend_for(engines[0])
    cluster.drive(init.init_users(), limit=3600.0)

    completed = {"reads": 0}
    warmup = 0.05
    t_start = env.now + warmup
    t_end = t_start + DURATION
    stop = {"flag": False}

    def writer():
        backend = backend_for(engines[0])
        rng = cluster.streams.stream("t9-writes")
        i = 0
        try:
            while not stop["flag"]:
                yield env.timeout(rng.expovariate(WRITE_RATE))
                env.process(
                    backend.new_tweet(rng.randrange(NUM_USERS), f"t{i}"),
                    name="t9-write",
                )
                i += 1
        except Interrupt:
            return

    def reader(index):
        backend = backend_for(engines[index % num_engines])
        rng = cluster.streams.stream(f"t9-read-{index}")
        try:
            while not stop["flag"]:
                yield env.process(
                    backend.get_timeline(rng.randrange(NUM_USERS)), name="t9-read"
                )
                if t_start <= env.now <= t_end:
                    completed["reads"] += 1
        except Interrupt:
            return

    procs = [env.process(writer(), name="t9-writer")]
    procs += [
        env.process(reader(i), name=f"t9-reader-{i}")
        for i in range(READERS_PER_ENGINE * num_engines)
    ]
    stopper = env.timeout(warmup + DURATION)
    env.run_until(stopper, limit=env.now + 600.0)
    stop["flag"] = True
    for proc in procs:
        if proc.is_alive:
            proc.interrupt("done")
    return completed["reads"] / DURATION


def experiment():
    return {n: run_scale(n) for n in ENGINE_COUNTS}


@pytest.mark.benchmark(group="table9")
def test_table9_scaling_logbook_engines(benchmark):
    results = run_once(benchmark, experiment)

    base = results[ENGINE_COUNTS[0]]
    rows = [
        ["T-put (txn/s)", *(f"{results[n]:,.0f}" for n in ENGINE_COUNTS)],
        ["Normalized", *(f"{results[n] / base:.2f}x" for n in ENGINE_COUNTS)],
    ]
    print_table(
        "Table 9: read-only txn throughput vs LogBook engines",
        ["", *(f"{n} engines" for n in ENGINE_COUNTS)],
        rows,
    )

    emit_artifact(
        "table9_engine_scaling",
        {
            f"engines{n}.read_txn_throughput": throughput(results[n])
            for n in ENGINE_COUNTS
        },
        title="Table 9: scaling read-only txns with LogBook engines",
        config={
            "engine_counts": ENGINE_COUNTS, "readers_per_engine": READERS_PER_ENGINE,
            "write_rate": WRITE_RATE, "duration_s": DURATION,
        },
    )

    # Claim: read throughput scales with engines under a fixed write rate
    # (paper: 4.63x from 8 -> 48 engines, i.e. ~0.77 scaling efficiency;
    # we require >= 2.4x from a 4x engine increase).
    assert results[ENGINE_COUNTS[-1]] > 2.4 * base
    # And scaling is monotone.
    assert results[ENGINE_COUNTS[0]] < results[ENGINE_COUNTS[1]] < results[ENGINE_COUNTS[2]]
