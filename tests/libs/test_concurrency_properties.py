"""Property tests for the support libraries' concurrency invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.dynamodb import DynamoDBService
from repro.core import BokiCluster
from repro.faas import FunctionContext
from repro.libs.bokiflow import BokiFlowRuntime, WorkflowEnv, check_lock_state, try_lock, unlock
from repro.libs.bokiqueue import BokiQueue


def fresh_cluster():
    c = BokiCluster(num_function_nodes=4, index_engines_per_log=4)
    DynamoDBService(c.env, c.net, c.streams)
    c.boot()
    return c


def make_env(cluster, runtime, wf_id):
    from repro.core.hashing import stable_hash

    fnode = cluster.function_nodes[stable_hash(wf_id) % len(cluster.function_nodes)]
    ctx = FunctionContext(node=fnode.node, gateway_invoke=None, book_id=7)
    return WorkflowEnv(runtime, ctx, wf_id)


class TestLockLinearizability:
    @settings(max_examples=8, deadline=None, suppress_health_check=list(HealthCheck))
    @given(num_contenders=st.integers(2, 6), stagger_us=st.integers(0, 500))
    def test_at_most_one_holder_ever(self, num_contenders, stagger_us):
        """N contenders race for a lock with arbitrary staggering: at any
        point the replayed chain has at most one holder, and all acquires
        that succeeded form an alternating acquire/release chain
        (Figure 7)."""
        cluster = fresh_cluster()
        runtime = BokiFlowRuntime(cluster)
        acquired = []

        def contender(i):
            env = make_env(cluster, runtime, f"c{i}")
            yield cluster.env.timeout(i * stagger_us * 1e-6)
            state = yield from try_lock(env, "race", f"holder-{i}")
            if state is not None:
                acquired.append((i, state))
                # Hold briefly, then release.
                yield cluster.env.timeout(0.001)
                yield from unlock(env, "race", state)
                return True
            return False

        procs = [cluster.env.process(contender(i)) for i in range(num_contenders)]
        winners = [cluster.env.run_until(p, limit=300.0) for p in procs]
        # Winners acquired sequentially: each saw the previous release.
        assert sum(winners) >= 1
        # Verify final chain state is released.
        env = make_env(cluster, runtime, "checker")

        def check():
            return (yield from check_lock_state(env, "race"))

        final = cluster.drive(check(), limit=120.0)
        assert final is not None
        assert final.holder == ""


class TestQueueModel:
    @settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
    @given(
        script=st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=25)
    )
    def test_single_shard_matches_fifo_model(self, script):
        """A random push/pop script against one shard matches a plain
        Python deque."""
        from collections import deque

        cluster = fresh_cluster()
        q = BokiQueue(cluster.logbook(33), "model", num_shards=1)
        model = deque()
        outcomes = []

        def run():
            producer, consumer = q.producer(), q.consumer(0)
            value = 0
            for op in script:
                if op == "push":
                    yield from producer.push(value)
                    model.append(value)
                    value += 1
                else:
                    got = yield from consumer.pop()
                    expected = model.popleft() if model else None
                    outcomes.append((got, expected))

        cluster.drive(run(), limit=600.0)
        for got, expected in outcomes:
            assert got == expected


class TestExactlyOnceProperty:
    @settings(max_examples=6, deadline=None, suppress_health_check=list(HealthCheck))
    @given(crash_at_step=st.integers(0, 4), num_steps=st.integers(1, 5))
    def test_counter_never_double_increments(self, crash_at_step, num_steps):
        """Crash a counter workflow at an arbitrary step and re-execute
        until success: each step's increment applies exactly once."""
        cluster = fresh_cluster()
        runtime = BokiFlowRuntime(cluster)
        crash = {"remaining": 1, "at": min(crash_at_step, num_steps - 1)}

        class Crash(Exception):
            pass

        def hook(step):
            if crash["remaining"] > 0 and step == crash["at"]:
                crash["remaining"] -= 1
                raise Crash()

        def body(env, arg):
            env.fault_hook = hook
            for i in range(num_steps):
                current = (yield from env.read("t", f"ctr-{i}")) or 0
                yield from env.write("t", f"ctr-{i}", current + 1)
            return "done"

        runtime.register_workflow("wf", body)

        def flow():
            wf_id = runtime.new_workflow_id()
            for _ in range(3):  # retry loop (recovery re-executions)
                try:
                    yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
                    break
                except Crash:
                    continue
            finals = []
            for i in range(num_steps):
                env = make_env(cluster, runtime, "checker")
                finals.append((yield from env.read("t", f"ctr-{i}")))
            return finals

        finals = cluster.drive(flow(), limit=600.0)
        assert finals == [1] * num_steps
