"""Synchronization primitives built on the simulation kernel.

Provides bounded FIFO queues (:class:`Queue`), keyed stores with waiters
(:class:`Store`), and counted resources modelling CPUs or connection pools
(:class:`Resource`). All primitives are fair: waiters are served in FIFO
order of arrival.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Environment, Event


class QueueFull(Exception):
    """Raised by non-blocking puts on a full queue."""


class QueueEmpty(Exception):
    """Raised by non-blocking gets on an empty queue."""


class Queue:
    """A FIFO queue of items with optional capacity.

    ``put`` and ``get`` return events; yield them from a process. Zero-delay
    handoff is supported: a put wakes the oldest blocked getter at the same
    virtual time.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            getter = self._popleft_live(self._getters)
            if getter is not None:
                getter.succeed(item)
                event.succeed()
                return event
        if not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item: Any) -> None:
        if self._getters:
            getter = self._popleft_live(self._getters)
            if getter is not None:
                getter.succeed(item)
                return
        if self.is_full:
            raise QueueFull
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        if not self._items:
            raise QueueEmpty
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            putter, item = self._putters.popleft()
            if putter.triggered:
                continue
            self._items.append(item)
            putter.succeed()

    @staticmethod
    def _popleft_live(waiters: Deque[Event]) -> Optional[Event]:
        while waiters:
            event = waiters.popleft()
            if not event.triggered:
                return event
        return None


class Store:
    """A keyed blackboard: ``wait(key)`` blocks until ``set(key, value)``.

    Used for request/response correlation (RPC reply matching) and for
    condition-style notifications keyed by identifier.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._values: dict = {}
        self._waiters: dict = {}

    def set(self, key: Any, value: Any = None) -> None:
        waiters = self._waiters.pop(key, None)
        if waiters:
            for event in waiters:
                if not event.triggered:
                    event.succeed(value)
        else:
            self._values[key] = value

    def wait(self, key: Any) -> Event:
        event = Event(self.env)
        if key in self._values:
            event.succeed(self._values.pop(key))
        else:
            self._waiters.setdefault(key, []).append(event)
        return event

    def fail(self, key: Any, exc: BaseException) -> None:
        """Fail all current waiters on ``key``."""
        for event in self._waiters.pop(key, []):
            if not event.triggered:
                event.fail(exc)


class Resource:
    """A counted resource (e.g. a node's worker pool).

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or via the :meth:`use` helper which wraps the hold in a sub-process.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Optional observer called with the new in-use count whenever it
        #: changes (repro.obs.profile busy-time accounting). One None-check
        #: on the hot path when profiling is off.
        self.monitor = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return sum(1 for w in self._waiters if not w.triggered)

    def request(self) -> Event:
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            if self.monitor is not None:
                self.monitor(self._in_use)
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self, request: Optional[Event] = None) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                # Handoff: the slot passes to a waiter, in-use unchanged.
                waiter.succeed()
                return
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("release() without matching request()")
        if self.monitor is not None:
            self.monitor(self._in_use)

    def use(self, duration: float) -> Event:
        """Acquire, hold for ``duration`` of virtual time, release."""

        def holder() -> Generator:
            req = self.request()
            yield req
            try:
                yield self.env.timeout(duration)
            finally:
                self.release(req)

        return self.env.process(holder(), name="resource-use")
