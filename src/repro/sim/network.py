"""Latency-modelled message network with RPC.

The network delivers messages between registered :class:`~repro.sim.node.Node`
objects after a one-way delay drawn from the configured latency model. The
default parameters are the paper's measured EC2 numbers: 107 us round-trip
with ~15 us jitter (§7, experimental setup).

Messages to crashed or partitioned nodes vanish, so RPCs complete only via
their timeout — the failure mode that Boki's quorum protocols and the
ZooKeeper-session failure detector are built around.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Generator, Optional, Set, Union

from repro.obs.recorder import DISABLED
from repro.obs.trace import STATUS_DROPPED, STATUS_ERROR, STATUS_OK, STATUS_TIMEOUT
from repro.sim.kernel import AnyOf, Environment, Event, Process
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams

DEFAULT_RTT = 107e-6
DEFAULT_JITTER = 15e-6
DEFAULT_RPC_TIMEOUT = 1.0


class RpcError(Exception):
    """The remote handler raised; wraps the original exception as ``cause``."""

    def __init__(self, method: str, cause: BaseException):
        super().__init__(f"rpc {method!r} failed: {cause!r}")
        self.method = method
        self.cause = cause


class RpcTimeout(Exception):
    """No reply arrived within the RPC timeout (drop, crash, or partition).

    ``retry_after`` is an optional machine-readable pacing hint (seconds)
    for retry layers: fail-fast rejections (the destination *definitely*
    crashed mid-call) carry ``0.0`` — fail over elsewhere immediately,
    there is nothing to wait for — while ordinary (ambiguous) timeouts
    carry ``None`` and leave pacing to the caller's backoff policy.
    ``repro.resil`` treats the hint as a floor on its backoff; see
    ``repro.admission.retry_after_hint``.
    """

    def __init__(self, method: str, dst: str, timeout: float,
                 retry_after: Optional[float] = None):
        super().__init__(f"rpc {method!r} to {dst} timed out after {timeout}s")
        self.method = method
        self.dst = dst
        self.timeout = timeout
        self.retry_after = retry_after


@dataclass
class Message:
    """A message in flight; carries the sender's trace context so a
    request's span tree follows it across nodes (``repro.obs``)."""

    msg_id: int
    src: str
    dst: str
    method: str
    payload: Any = None
    trace_ctx: Any = None
    #: True for a chaos-injected duplicate (never re-duplicated).
    dup: bool = False


@dataclass
class LinkFault:
    """Per-directed-link fault probabilities (repro.chaos).

    ``drop`` and ``dup`` are per-message probabilities in [0, 1]; ``delay``
    is a fixed extra one-way latency in seconds.
    """

    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0


class Network:
    """Connects nodes; provides one-way sends and request/response RPC."""

    def __init__(
        self,
        env: Environment,
        streams: Optional[RandomStreams] = None,
        rtt: float = DEFAULT_RTT,
        jitter: float = DEFAULT_JITTER,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
    ):
        self.env = env
        self.streams = streams or RandomStreams(seed=0)
        self._rng = self.streams.stream("network")
        self.rtt = rtt
        self.jitter = jitter
        self.rpc_timeout = rpc_timeout
        self.nodes: Dict[str, Node] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        self._isolated: Set[str] = set()
        #: Directed (src, dst) -> LinkFault; empty unless chaos faults are
        #: installed, so the common path costs one truthiness check.
        self._link_faults: Dict[tuple, LinkFault] = {}
        #: Dedicated RNG for fault draws, created lazily on the first
        #: installed fault so fault-free simulations consume exactly the
        #: same random streams as before.
        self._chaos_rng = None
        #: Pending fail-fast events for in-flight RPCs, keyed by
        #: destination node name (resolved when that node crashes).
        self._inflight: Dict[str, list] = {}
        self._msg_ids = itertools.count(1)
        self.messages_sent = 0
        self.trace_hook: Optional[Callable[[Message], None]] = None
        #: Observability switch (repro.obs); DISABLED costs one attribute
        #: check per message.
        self.obs = DISABLED

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.crash_hooks.append(self._on_node_crash)
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two nodes (messages silently dropped)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def isolate(self, name: str) -> None:
        """Cut every link to/from ``name`` (the node itself stays up)."""
        self._isolated.add(name)

    def unisolate(self, name: str) -> None:
        self._isolated.discard(name)

    def partition_groups(self, groups) -> None:
        """Partition the given groups of node names from each other.

        Nodes within a group remain mutually connected; nodes not listed in
        any group keep all their links. Builds on pairwise
        :meth:`partition`, so :meth:`heal_all` undoes it.
        """
        groups = [list(group) for group in groups]
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        self.partition(a, b)

    def heal_all(self) -> None:
        self._partitions.clear()
        self._isolated.clear()

    def reachable(self, a: str, b: str) -> bool:
        if self._isolated and (a in self._isolated or b in self._isolated):
            return False
        return frozenset((a, b)) not in self._partitions

    # ------------------------------------------------------------------
    # Fault injection (repro.chaos)
    # ------------------------------------------------------------------
    def set_link_fault(
        self,
        a: str,
        b: str,
        drop: float = 0.0,
        dup: float = 0.0,
        delay: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Install per-message drop/dup/extra-delay faults on a link.

        Faults are directed (``a`` → ``b``); with ``symmetric=True`` the
        reverse direction gets an identical, independently-drawn fault.
        Duplication applies only to one-way sends (RPC request/reply legs
        honour drop and delay; duplicating a request would re-execute its
        handler, which is a different fault than the network can inject).
        """
        if self._chaos_rng is None:
            self._chaos_rng = self.streams.stream("chaos-net")
        self._link_faults[(a, b)] = LinkFault(drop=drop, dup=dup, delay=delay)
        if symmetric:
            self._link_faults[(b, a)] = LinkFault(drop=drop, dup=dup, delay=delay)

    def clear_link_fault(self, a: str, b: str, symmetric: bool = True) -> None:
        self._link_faults.pop((a, b), None)
        if symmetric:
            self._link_faults.pop((b, a), None)

    def clear_link_faults(self) -> None:
        self._link_faults.clear()

    def _hop_fault(self, src_name: str, dst_name: str, allow_dup: bool):
        """Decide one directed hop's fate: (dropped, duplicated, extra_delay).

        Draws from the chaos RNG only when a fault is installed on this
        directed link, in a fixed order (drop, then dup), so fault-free
        links never consume randomness.
        """
        fault = self._link_faults.get((src_name, dst_name))
        if fault is None:
            return False, False, 0.0
        rng = self._chaos_rng
        dropped = fault.drop > 0.0 and rng.random() < fault.drop
        duplicated = allow_dup and fault.dup > 0.0 and rng.random() < fault.dup
        return dropped, duplicated, fault.delay

    def _on_node_crash(self, node: Node) -> None:
        """Fail-fast: resolve in-flight RPC waits targeting a crashed node
        so callers see :class:`RpcTimeout` now instead of at the deadline."""
        waiters = self._inflight.pop(node.name, None)
        if not waiters:
            return
        for event in waiters:
            if not event.triggered:
                event.succeed(None)

    def one_way_delay(self) -> float:
        """One hop's latency: RTT/2 plus Gaussian jitter, floored at 1 us."""
        delay = self.rtt / 2 + self._rng.gauss(0, self.jitter / 2)
        return max(delay, 1e-6)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _resolve(self, node: Union[str, Node]) -> Node:
        return node if isinstance(node, Node) else self.nodes[node]

    def send(self, src: Union[str, Node], dst: Union[str, Node], method: str, payload: Any = None) -> None:
        """One-way, best-effort message: runs the destination handler after
        the network delay; no reply, errors in the handler are swallowed
        into a failed (unobserved) process."""
        src_node, dst_node = self._resolve(src), self._resolve(dst)
        if not src_node.alive:
            return
        msg = Message(next(self._msg_ids), src_node.name, dst_node.name, method, payload)
        self.messages_sent += 1
        if self.obs.enabled:
            msg.trace_ctx = self.obs.tracer.current_context()
            self.obs.metrics.counter("net.sends").incr()
        if self.trace_hook is not None:
            self.trace_hook(msg)
        self.env.process(self._deliver_oneway(src_node, dst_node, msg), name=f"send:{method}")

    def _deliver_oneway(self, src: Node, dst: Node, msg: Message) -> Generator:
        obs = self.obs
        extra_delay = 0.0
        if self._link_faults:
            dropped, duplicated, extra_delay = self._hop_fault(
                src.name, dst.name, allow_dup=not msg.dup
            )
            if duplicated:
                dup_msg = Message(
                    next(self._msg_ids), msg.src, msg.dst, msg.method,
                    msg.payload, msg.trace_ctx, dup=True,
                )
                self.messages_sent += 1
                self.env.process(
                    self._deliver_oneway(src, dst, dup_msg),
                    name=f"send:{msg.method}:dup",
                )
            if dropped:
                if obs.enabled:
                    obs.tracer.instant(
                        f"drop:{msg.method}", parent=msg.trace_ctx, node=dst.name,
                        kind="net", status=STATUS_DROPPED,
                        attrs={"src": msg.src, "reason": "chaos"},
                    )
                    obs.metrics.counter("net.drops").incr()
                return
        yield self.env.timeout(self.one_way_delay() + extra_delay + dst.slowdown)
        if not dst.alive or not self.reachable(src.name, dst.name):
            if obs.enabled:
                obs.tracer.instant(
                    f"drop:{msg.method}", parent=msg.trace_ctx, node=dst.name,
                    kind="net", status=STATUS_DROPPED,
                    attrs={"src": msg.src, "reason": "down" if not dst.alive else "partition"},
                )
                obs.metrics.counter("net.drops").incr()
            return
        handler = dst.handlers.get(msg.method)
        if handler is None:
            return
        span = None
        prev_ctx = None
        if obs.enabled:
            span = obs.tracer.start_span(
                f"handle:{msg.method}", parent=msg.trace_ctx, node=dst.name, kind="handler"
            )
            prev_ctx = obs.tracer.set_process_context(span.context)
        try:
            result = handler(msg.payload)
        except Exception as exc:  # noqa: BLE001 - close the span, then fail as before
            if span is not None:
                span.finish(STATUS_ERROR, error=repr(exc))
            raise
        finally:
            if obs.enabled:
                obs.tracer.set_process_context(prev_ctx)
        if hasattr(result, "throw"):  # generator handler: run as a process
            # The wrapped process inherits the handle span's context via the
            # ambient context set above at creation... it is created *after*
            # the restore, so install it explicitly.
            proc = self.env.process(self._ignore_errors(result, span), name=f"handle:{msg.method}")
            if span is not None:
                proc.trace_ctx = span.context
        elif span is not None:
            span.finish(STATUS_OK)

    @staticmethod
    def _ignore_errors(generator: Generator, span=None) -> Generator:
        try:
            yield from generator
        except Exception as exc:  # noqa: BLE001 - best-effort delivery semantics
            if span is not None:
                span.finish(STATUS_ERROR, error=repr(exc))
        else:
            if span is not None:
                span.finish(STATUS_OK)

    def rpc(
        self,
        src: Union[str, Node],
        dst: Union[str, Node],
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Process:
        """Request/response call; yield the returned process for the result.

        Raises :class:`RpcTimeout` if the reply does not arrive in time and
        :class:`RpcError` if the remote handler raised.
        """
        src_node, dst_node = self._resolve(src), self._resolve(dst)
        deadline = timeout if timeout is not None else self.rpc_timeout
        return self.env.process(
            self._rpc(src_node, dst_node, method, payload, deadline),
            name=f"rpc:{method}",
        )

    def _rpc(self, src: Node, dst: Node, method: str, payload: Any, timeout: float) -> Generator:
        src.check_alive()
        msg = Message(next(self._msg_ids), src.name, dst.name, method, payload)
        self.messages_sent += 1
        obs = self.obs
        span = None
        if obs.enabled:
            # Parent = the calling process's ambient context (inherited by
            # this _rpc process at creation). The message carries the rpc
            # span so the server side parents under it.
            span = obs.tracer.start_span(
                f"rpc:{method}", node=src.name, kind="rpc", attrs={"dst": dst.name}
            )
            msg.trace_ctx = span.context
            obs.metrics.counter("net.rpc.calls").incr()
        if self.trace_hook is not None:
            self.trace_hook(msg)
        reply = Event(self.env)
        self.env.process(self._serve(src, dst, msg, reply), name=f"serve:{method}")
        timer = self.env.timeout(timeout)
        # Fail fast if the destination crashes while this call is in flight
        # (a node that is already down when the call starts still waits out
        # the full timeout, as a real client would).
        down = Event(self.env)
        self._inflight.setdefault(dst.name, []).append(down)
        try:
            yield AnyOf(self.env, [reply, timer, down])
        except BaseException as exc:  # interrupted caller, node crash, ...
            if span is not None:
                span.finish(STATUS_ERROR, error=repr(exc))
            raise
        finally:
            waiters = self._inflight.get(dst.name)
            if waiters is not None:
                try:
                    waiters.remove(down)
                except ValueError:
                    pass
                if not waiters:
                    self._inflight.pop(dst.name, None)
        if not reply.triggered:
            if span is not None:
                span.finish(STATUS_TIMEOUT, timeout=timeout)
                obs.metrics.counter("net.rpc.timeouts").incr()
            # Fail-fast (the destination crashed mid-call): hint 0.0 —
            # the node is definitely down, fail over now rather than
            # pacing as if it might still answer.
            raise RpcTimeout(method, dst.name, timeout,
                             retry_after=0.0 if down.triggered else None)
        status, value = reply.value
        if status == "err":
            if span is not None:
                span.finish(STATUS_ERROR, error=repr(value))
            raise RpcError(method, value)
        if span is not None:
            span.finish(STATUS_OK)
        return value

    def _serve(self, src: Node, dst: Node, msg: Message, reply: Event) -> Generator:
        obs = self.obs
        extra_delay = 0.0
        if self._link_faults:
            dropped, _, extra_delay = self._hop_fault(src.name, dst.name, allow_dup=False)
            if dropped:
                if obs.enabled:
                    obs.tracer.instant(
                        f"drop:{msg.method}", parent=msg.trace_ctx, node=dst.name,
                        kind="net", status=STATUS_DROPPED,
                        attrs={"src": msg.src, "reason": "chaos"},
                    )
                    obs.metrics.counter("net.drops").incr()
                return
        yield self.env.timeout(self.one_way_delay() + extra_delay + dst.slowdown)
        if not dst.alive or not self.reachable(src.name, dst.name):
            if obs.enabled:
                obs.tracer.instant(
                    f"drop:{msg.method}", parent=msg.trace_ctx, node=dst.name,
                    kind="net", status=STATUS_DROPPED,
                    attrs={"src": msg.src, "reason": "down" if not dst.alive else "partition"},
                )
                obs.metrics.counter("net.drops").incr()
            return
        span = None
        prev_ctx = None
        if obs.enabled:
            span = obs.tracer.start_span(
                f"handle:{msg.method}", parent=msg.trace_ctx, node=dst.name, kind="handler"
            )
            prev_ctx = obs.tracer.set_process_context(span.context)
        try:
            handler = dst.handler_for(msg.method)
            result = handler(msg.payload)
            if hasattr(result, "throw"):
                result = yield self.env.process(result, name=f"handle:{msg.method}")
            outcome = ("ok", result)
            if span is not None:
                span.finish(STATUS_OK)
        except Exception as exc:  # noqa: BLE001 - shipped back to the caller
            outcome = ("err", exc)
            if span is not None:
                span.finish(STATUS_ERROR, error=repr(exc))
        finally:
            if obs.enabled:
                obs.tracer.set_process_context(prev_ctx)
        reply_delay = self.one_way_delay()
        if self._link_faults:
            dropped, _, extra_delay = self._hop_fault(dst.name, src.name, allow_dup=False)
            if dropped:
                if obs.enabled:
                    obs.metrics.counter("net.drops").incr()
                return
            reply_delay += extra_delay
        yield self.env.timeout(reply_delay)
        # The replying node must still be up, and the link back intact.
        if not dst.alive or not src.alive or not self.reachable(src.name, dst.name):
            return
        if not reply.triggered:
            reply.succeed(outcome)

