"""repro.resil — deterministic end-to-end failure recovery.

The unified resilience layer for the simulated Boki stack: retry
policies with exponential backoff + jitter from named deterministic RNG
streams, per-destination circuit breakers, a cluster-wide retry budget,
and retrying RPC wrappers (single-destination and failover) over
``sim.network``. Enable it on a cluster with
``BokiCluster.enable_resilience()``; see ``docs/resilience.md`` for the
policies, the determinism guarantees, and how retries compose with
Boki's exactly-once machinery.
"""

from repro.resil.breaker import CircuitBreaker, CircuitOpenError
from repro.resil.policy import (
    FAILURE,
    OVERLOAD,
    TIMEOUT,
    RetryBudget,
    RetryPolicy,
    classify,
    unwrap_failure,
)
from repro.resil.rpc import DEFAULT_POLICY, Resilience

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_POLICY",
    "FAILURE",
    "OVERLOAD",
    "Resilience",
    "RetryBudget",
    "RetryPolicy",
    "TIMEOUT",
    "classify",
    "unwrap_failure",
]
