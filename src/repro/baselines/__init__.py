"""Baseline and comparator systems.

Every system the paper's evaluation compares against, implemented as a
simulated service with a latency/concurrency model calibrated to the
paper's own measurements (constants and provenance in
:mod:`repro.baselines.latency`):

- :mod:`repro.baselines.dynamodb` — DynamoDB substitute (conditional
  writes; the substrate for Beldi and for BokiFlow's user data).
- :mod:`repro.baselines.beldi` — Beldi's workflow library (linked-DAAL
  logging on DynamoDB) and the unsafe no-logging baseline.
- :mod:`repro.baselines.mongodb` — MongoDB substitute (JSON documents,
  replica set, multi-document transactions) for §7.3.
- :mod:`repro.baselines.cloudburst` — Cloudburst substitute (causal
  key-value cache + backing store) for §7.3.
- :mod:`repro.baselines.sqs` / :mod:`repro.baselines.pulsar` — queue
  service substitutes for §7.4.
- :mod:`repro.baselines.redis` — remote cache substitute for the aux-data
  ablation (§7.5, Table 5).
- :mod:`repro.baselines.fixed_sharding` — the fixed LogBook->shard
  placement Boki's log index is compared against (§7.5, Table 8).
"""

from repro.baselines.dynamodb import ConditionFailedError, DynamoDBClient, DynamoDBService

__all__ = ["ConditionFailedError", "DynamoDBClient", "DynamoDBService"]
