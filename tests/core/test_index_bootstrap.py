"""Tests for index bootstrap: newly promoted index engines learn history."""

import pytest

from repro.core import BokiCluster


class TestIndexBootstrap:
    def test_new_index_engine_serves_old_records(self):
        """After a reconfiguration widens the index-engine set, the newly
        promoted engine must serve reads of records from earlier terms."""
        c = BokiCluster(num_function_nodes=4, index_engines_per_log=2)
        c.boot()

        def flow():
            book = c.logbook(1)
            yield from book.append("historical", tags=[3])
            # Widen the index set to all 4 engines in the next term.
            yield from c.controller.reconfigure(index_engines_per_log=4)
            yield c.env.timeout(0.05)  # bootstrap runs in the background
            # Find an engine that indexes now but did not before.
            old = set()
            for term_id, cfg in c.engines["func-0"].term_history.items():
                if term_id == 1:
                    old = set(cfg.assignment(0).index_engines)
            new_cfg = c.controller.current_term
            promoted = [
                name for name in new_cfg.assignment(0).index_engines
                if name not in old
            ]
            assert promoted, "expected newly promoted index engines"
            reader = c.logbook(1, engine=c.engine_of(promoted[0]))
            record = yield from reader.read_next(tag=3, min_seqnum=0)
            return record.data if record else None

        assert c.drive(flow(), limit=120.0) == "historical"

    def test_bootstrap_preserves_tag_rows(self):
        c = BokiCluster(num_function_nodes=4, index_engines_per_log=2)
        c.boot()

        def flow():
            book = c.logbook(1)
            yield from book.append("a", tags=[5])
            yield from book.append("b", tags=[6])
            yield from book.append("c", tags=[5])
            yield from c.controller.reconfigure(index_engines_per_log=4)
            yield c.env.timeout(0.05)
            new_cfg = c.controller.current_term
            promoted = new_cfg.assignment(0).index_engines[-1]
            reader = c.logbook(1, engine=c.engine_of(promoted))
            tagged = yield from reader.iter_records(tag=5)
            return [r.data for r in tagged]

        assert c.drive(flow(), limit=120.0) == ["a", "c"]

    def test_bootstrap_not_needed_for_first_term(self):
        """Term-1 index engines must not attempt bootstrap (no history)."""
        c = BokiCluster(num_function_nodes=2, index_engines_per_log=2)
        c.boot()

        def flow():
            book = c.logbook(1)
            yield from book.append("x")
            tail = yield from book.check_tail()
            return tail.data

        assert c.drive(flow(), limit=60.0) == "x"
