"""Simulated Apache Pulsar (§7.4, Table 4).

A distributed broker-based queue. In the paper's setup the brokers run on
the function nodes (locality) with queue data on the storage nodes, so
publishes/receives cost a broker hop plus a bookkeeper write — a ~1.5 ms
class operation, far cheaper than SQS's managed API but above BokiQueue's
LogBook appends at low load.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from repro.baselines.latency import PULSAR_CONCURRENCY, PULSAR_PUBLISH, PULSAR_RECEIVE

#: Broker-side backlog quota per topic partition: publishes are throttled
#: while consumers are behind (Pulsar's producer throttling / backlog
#: quotas), which is why Pulsar's delivery delays stay in the ~8 ms class
#: even at 4:1 producer-heavy load (Table 4) while SQS's explode.
BACKLOG_QUOTA = 48
THROTTLE_POLL = 1e-3
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource


class PulsarBroker:
    """One broker; a deployment runs several (e.g. one per function node)
    with topics partitioned across them."""

    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=16))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=PULSAR_CONCURRENCY)
        self.topics: dict = {}
        self.op_count = 0
        self.node.handle("pulsar.publish", self._h_publish)
        self.node.handle("pulsar.receive", self._h_receive)

    def topic(self, name: str) -> Deque[Tuple[float, Any]]:
        return self.topics.setdefault(name, deque())

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _h_publish(self, payload: dict) -> Generator:
        topic = self.topic(payload["topic"])
        while len(topic) >= BACKLOG_QUOTA:
            yield self.env.timeout(THROTTLE_POLL)
        yield from self._service(PULSAR_PUBLISH)
        topic.append((self.env.now, payload["message"]))
        return True

    def _h_receive(self, payload: dict) -> Generator:
        yield from self._service(PULSAR_RECEIVE)
        q = self.topic(payload["topic"])
        if not q:
            return None
        enqueued, message = q.popleft()
        return message, self.env.now - enqueued


class PulsarClient:
    """Publishes/receives on a topic partitioned over a broker set."""

    def __init__(self, net: Network, node: Node, broker_names, num_partitions: int = 4):
        self.net = net
        self.node = node
        self.broker_names = list(broker_names)
        self.num_partitions = num_partitions
        self._rr = 0

    def _broker_for(self, partition: int) -> str:
        return self.broker_names[partition % len(self.broker_names)]

    def _call(self, broker: str, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, broker, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def publish(self, topic: str, message: Any, partition: Optional[int] = None) -> Generator:
        if partition is None:
            partition = self._rr % self.num_partitions
            self._rr += 1
        broker = self._broker_for(partition)
        return (
            yield from self._call(
                broker, "pulsar.publish", {"topic": f"{topic}#{partition}", "message": message}
            )
        )

    def receive(self, topic: str, partition: int) -> Generator:
        broker = self._broker_for(partition)
        return (
            yield from self._call(
                broker, "pulsar.receive", {"topic": f"{topic}#{partition}"}
            )
        )
