"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim import Environment, Queue, QueueEmpty, QueueFull, Resource, Store


def run(env):
    env.run()


class TestQueue:
    def test_put_then_get(self):
        env = Environment()
        q = Queue(env)
        got = []

        def producer(env):
            yield q.put("a")
            yield q.put("b")

        def consumer(env):
            got.append((yield q.get()))
            got.append((yield q.get()))

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        env = Environment()
        q = Queue(env)
        got = []

        def consumer(env):
            item = yield q.get()
            got.append((item, env.now))

        def producer(env):
            yield env.timeout(3.0)
            yield q.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        run(env)
        assert got == [("late", 3.0)]

    def test_capacity_blocks_put(self):
        env = Environment()
        q = Queue(env, capacity=1)
        times = []

        def producer(env):
            yield q.put(1)
            times.append(env.now)
            yield q.put(2)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(5.0)
            yield q.get()

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert times == [0.0, 5.0]

    def test_nowait_variants(self):
        env = Environment()
        q = Queue(env, capacity=1)
        with pytest.raises(QueueEmpty):
            q.get_nowait()
        q.put_nowait("x")
        with pytest.raises(QueueFull):
            q.put_nowait("y")
        assert q.get_nowait() == "x"

    def test_fifo_order_of_getters(self):
        env = Environment()
        q = Queue(env)
        got = []

        def consumer(env, name):
            item = yield q.get()
            got.append((name, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))

        def producer(env):
            yield env.timeout(1.0)
            yield q.put("a")
            yield q.put("b")

        env.process(producer(env))
        run(env)
        assert got == [("first", "a"), ("second", "b")]

    def test_len(self):
        env = Environment()
        q = Queue(env)
        q.put_nowait(1)
        q.put_nowait(2)
        assert len(q) == 2

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Queue(env, capacity=0)


class TestStore:
    def test_set_before_wait(self):
        env = Environment()
        s = Store(env)
        s.set("k", 7)
        got = []

        def waiter(env):
            got.append((yield s.wait("k")))

        env.process(waiter(env))
        run(env)
        assert got == [7]

    def test_wait_before_set(self):
        env = Environment()
        s = Store(env)
        got = []

        def waiter(env):
            value = yield s.wait("k")
            got.append((value, env.now))

        def setter(env):
            yield env.timeout(2.0)
            s.set("k", "v")

        env.process(waiter(env))
        env.process(setter(env))
        run(env)
        assert got == [("v", 2.0)]

    def test_multiple_waiters_all_woken(self):
        env = Environment()
        s = Store(env)
        got = []

        def waiter(env, i):
            got.append((i, (yield s.wait("k"))))

        for i in range(3):
            env.process(waiter(env, i))

        def setter(env):
            yield env.timeout(1.0)
            s.set("k", "all")

        env.process(setter(env))
        run(env)
        assert sorted(got) == [(0, "all"), (1, "all"), (2, "all")]

    def test_fail_waiters(self):
        env = Environment()
        s = Store(env)
        caught = []

        def waiter(env):
            try:
                yield s.wait("k")
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env))

        def failer(env):
            yield env.timeout(1.0)
            s.fail("k", RuntimeError("gone"))

        env.process(failer(env))
        run(env)
        assert caught == ["gone"]


class TestResource:
    def test_serializes_when_capacity_one(self):
        env = Environment()
        r = Resource(env, capacity=1)
        done = []

        def worker(env, name):
            req = r.request()
            yield req
            yield env.timeout(1.0)
            r.release(req)
            done.append((name, env.now))

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        run(env)
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_parallel_up_to_capacity(self):
        env = Environment()
        r = Resource(env, capacity=2)
        done = []

        def worker(env, name):
            req = r.request()
            yield req
            yield env.timeout(1.0)
            r.release(req)
            done.append((name, env.now))

        for name in ["a", "b", "c"]:
            env.process(worker(env, name))
        run(env)
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_use_helper(self):
        env = Environment()
        r = Resource(env, capacity=1)
        times = []

        def worker(env):
            yield r.use(2.0)
            times.append(env.now)

        env.process(worker(env))
        env.process(worker(env))
        run(env)
        assert times == [2.0, 4.0]

    def test_release_without_request_raises(self):
        env = Environment()
        r = Resource(env, capacity=1)
        with pytest.raises(RuntimeError):
            r.release()

    def test_queued_count(self):
        env = Environment()
        r = Resource(env, capacity=1)
        r.request()
        r.request()
        r.request()
        assert r.in_use == 1
        assert r.queued == 2

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
