"""Unit tests for the record cache and consistent hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import RecordCache
from repro.core.hashing import ConsistentHashRing, stable_hash
from repro.core.types import LogRecord


def record(seqnum, size=100):
    return LogRecord(seqnum=seqnum, tags=(), data="x" * size)


class TestRecordCache:
    def test_put_get_roundtrip(self):
        cache = RecordCache(10_000)
        cache.put_record(record(1))
        assert cache.get_record(1).seqnum == 1

    def test_miss_returns_none(self):
        cache = RecordCache(10_000)
        assert cache.get_record(42) is None
        assert cache.misses == 1

    def test_lru_eviction_under_pressure(self):
        cache = RecordCache(500)
        for s in range(10):
            cache.put_record(record(s, size=100))
        assert cache.get_record(0) is None  # oldest evicted
        assert cache.get_record(9) is not None
        assert cache.evictions > 0

    def test_access_refreshes_lru_order(self):
        cache = RecordCache(400)
        cache.put_record(record(1, 100))
        cache.put_record(record(2, 100))
        cache.get_record(1)  # refresh 1
        cache.put_record(record(3, 100))
        cache.put_record(record(4, 100))  # evicts 2, not 1
        assert cache.get_record(1) is not None
        assert cache.get_record(2) is None

    def test_aux_data_shares_cache(self):
        cache = RecordCache(10_000)
        cache.put_aux(5, {"view": 1})
        assert cache.get_aux(5) == {"view": 1}
        cache.put_record(record(5))
        assert cache.get_aux(5) == {"view": 1}  # preserved alongside record

    def test_aux_without_record(self):
        cache = RecordCache(10_000)
        cache.put_aux(7, "aux")
        assert cache.get_record(7) is None
        assert cache.get_aux(7) == "aux"

    def test_drop(self):
        cache = RecordCache(10_000)
        cache.put_record(record(1))
        cache.drop(1)
        assert cache.get_record(1) is None
        assert cache.used_bytes == 0

    def test_used_bytes_tracks_updates(self):
        cache = RecordCache(100_000)
        cache.put_record(record(1, 100))
        first = cache.used_bytes
        cache.put_record(record(1, 100))  # overwrite, no growth
        assert cache.used_bytes == first

    def test_hit_rate(self):
        cache = RecordCache(10_000)
        cache.put_record(record(1))
        cache.get_record(1)
        cache.get_record(2)
        assert cache.hit_rate() == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecordCache(0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_capacity_never_exceeded_property(self, accesses):
        cache = RecordCache(1000)
        for s in accesses:
            cache.put_record(record(s, size=150))
            assert cache.used_bytes <= max(cache.capacity_bytes, 150 + 32)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(42, "x") == stable_hash(42, "x")

    def test_salt_changes_value(self):
        assert stable_hash(42, "a") != stable_hash(42, "b")


class TestConsistentHashRing:
    def test_lookup_in_members(self):
        ring = ConsistentHashRing([0, 1, 2], num_partitions=64)
        for book in range(100):
            assert ring.lookup(book) in (0, 1, 2)

    def test_deterministic(self):
        r1 = ConsistentHashRing([0, 1], num_partitions=64, seed=3)
        r2 = ConsistentHashRing([0, 1], num_partitions=64, seed=3)
        assert all(r1.lookup(b) == r2.lookup(b) for b in range(50))

    def test_balance(self):
        """Strategy 3's equal partitions keep load within ~2x of fair share
        for many books."""
        ring = ConsistentHashRing([0, 1, 2, 3], num_partitions=256)
        counts = ring.load_counts(range(100_000))
        fair = 100_000 / 4
        for member, count in counts.items():
            assert 0.6 * fair < count < 1.6 * fair

    def test_partitions_equally_owned(self):
        ring = ConsistentHashRing([0, 1, 2, 3], num_partitions=256)
        for member in [0, 1, 2, 3]:
            assert len(ring.partitions_of(member)) == 64

    def test_single_member_gets_everything(self):
        ring = ConsistentHashRing([7], num_partitions=16)
        assert all(ring.lookup(b) == 7 for b in range(20))

    def test_errors(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([], num_partitions=8)
        with pytest.raises(ValueError):
            ConsistentHashRing([1, 2, 3], num_partitions=2)

    def test_growing_ring_remaps_subset(self):
        """Adding a member moves some books but most stay (consistent
        hashing's defining property)."""
        before = ConsistentHashRing([0, 1], num_partitions=256)
        after = ConsistentHashRing([0, 1, 2], num_partitions=256)
        moved = sum(
            1 for b in range(10_000)
            if before.lookup(b) != after.lookup(b) and after.lookup(b) != 2
        )
        # Books should only move TO the new member, almost never between
        # old members (equal-partition reassignment keeps most in place).
        assert moved < 3000
