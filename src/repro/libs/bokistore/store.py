"""BokiStore: durable JSON object storage over a LogBook (§5.2).

Objects are identified by string names; every update is a log record tagged
with the object's tag (so an object re-constructs by replaying only its own
records) and with the global write-stream tag (so transactions can detect
conflicts, Figure 8). Reads replay the log; auxiliary data caches per-record
object views so replay restarts from the most recent cached view instead of
the beginning (§5.4, Figure 9).
"""

from __future__ import annotations

import copy
from typing import Any, Generator, List, Optional, Tuple

from repro.core.hashing import stable_hash
from repro.core.logbook import LogBook
from repro.core.types import MAX_SEQNUM, LogRecord
from repro.libs.bokistore.jsonpath import apply_ops, get_path

_TAG_MOD = (1 << 61) - 1

#: Global stream of all writes + transaction records (conflict detection).
WRITE_STREAM_TAG = stable_hash("bokistore-write-stream", salt="bokistore") % _TAG_MOD + 1

#: Modelled cost of the support library's object (de)serialization: the Go
#: library JSON-decodes the cached view (or replayed updates) on every
#: read, proportional to object size with a small fixed floor. Calibrated
#: against Figure 12b, where a BokiStore non-transactional read of a
#: Retwis object (UserLogin, 1.47 ms) costs roughly 0.9 ms more than the
#: raw LogBook read underneath it (Table 3).
VIEW_DECODE_COST_PER_KB = 0.85e-3
VIEW_DECODE_FLOOR = 0.12e-3

#: CPU cost of applying one replayed update during object reconstruction
#: (JSON op application in the Go library). This is what makes replay
#: length matter: without cached views a read pays this per historical
#: record (Table 5's "optimization disabled" collapse).
REPLAY_CPU_PER_RECORD = 0.1e-3


def object_tag(name: str) -> int:
    return stable_hash(("obj", name), salt="bokistore") % _TAG_MOD + 1


class ObjectView:
    """An immutable snapshot of one object (the read result)."""

    def __init__(self, name: str, data: Optional[dict], seqnum: int):
        self.name = name
        self._data = data
        #: Position of the last record reflected in this view.
        self.seqnum = seqnum

    @property
    def exists(self) -> bool:
        return self._data is not None

    def get(self, path: str, default: Any = None) -> Any:
        if self._data is None:
            return default
        return get_path(self._data, path, default)

    def as_dict(self) -> Optional[dict]:
        return copy.deepcopy(self._data)

    def __repr__(self) -> str:
        return f"<ObjectView {self.name} @{self.seqnum:#x}>"


class BokiStore:
    """A store handle bound to one LogBook."""

    def __init__(
        self,
        book: LogBook,
        fill_aux: bool = True,
        decode_cost_per_kb: float = VIEW_DECODE_COST_PER_KB,
    ):
        self.book = book
        #: Fill missing cached views during replay (Figure 9); the Table 5
        #: ablation disables this.
        self.fill_aux = fill_aux
        self.decode_cost_per_kb = decode_cost_per_kb
        #: Pluggable aux-data channel; the Table 5 "AuxData w/ Redis"
        #: variant replaces these with Redis-backed implementations.
        self.aux_get = self._aux_from_record
        self.aux_put = self._aux_to_book
        self.replayed_records = 0
        #: Optional repro.chaos operation-history recorder (duck-typed:
        #: needs invoke/ok/fail). When set, client-visible put/get calls
        #: are recorded for offline linearizability checking.
        self.history = None
        self.client_name = "store"
        self._hist_suppress = 0

    # ------------------------------------------------------------------
    # Aux-data plumbing (view caching, §5.4)
    # ------------------------------------------------------------------
    def _aux_from_record(self, record: LogRecord) -> Generator:
        if False:
            yield
        return record.auxdata

    def _aux_to_book(self, record: LogRecord, aux: dict) -> Generator:
        yield from self.book.set_auxdata(record.seqnum, aux)

    def _merged_aux(self, record: LogRecord, current: Optional[dict], updates: dict) -> dict:
        merged = dict(current) if isinstance(current, dict) else {}
        for key, value in updates.items():
            if key == "view":
                views = dict(merged.get("view", {}))
                views.update(value)
                merged["view"] = views
            else:
                merged[key] = value
        return merged

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def update(self, name: str, ops: List[dict]) -> Generator:
        """Append an object update; returns its seqnum. The new object view
        is cached in the record's auxiliary data (the writer knows the
        resulting state, §5.4) — but only when no concurrent write slipped
        in between our read and our append: Boki trusts applications to
        provide *consistent* aux data (§3), and a view computed from a
        stale base would poison every future read."""
        self._hist_suppress += 1
        try:
            view = yield from self.get_object(name)
        finally:
            self._hist_suppress -= 1
        new_state = apply_ops(view.as_dict() if view.exists else None, ops)
        seqnum = yield from self.book.append(
            {"kind": "write", "obj": name, "ops": ops},
            tags=[object_tag(name), WRITE_STREAM_TAG],
        )
        prev = yield from self.book.read_prev(tag=object_tag(name), max_seqnum=seqnum - 1)
        based_on = prev.seqnum if prev is not None else 0
        if based_on == view.seqnum:
            yield from self.aux_put(
                _FakeRecord(seqnum), {"view": {name: copy.deepcopy(new_state)}}
            )
        # else: a concurrent writer interleaved; readers will replay from
        # the last consistent view and fill the caches correctly.
        return seqnum

    def put(self, name: str, value: dict) -> Generator:
        """Blind full-object write (the KV-style put of §7.3's Cloudburst
        comparison): a ``replace`` op needs no read-before-write because
        the writer knows the resulting state for the aux view."""
        op = None
        if self.history is not None and not self._hist_suppress:
            op = self.history.invoke(self.client_name, "store.put", name, value=value)
        try:
            seqnum = yield from self.book.append(
                {"kind": "write", "obj": name, "ops": [{"op": "replace", "value": value}]},
                tags=[object_tag(name), WRITE_STREAM_TAG],
            )
            yield from self.aux_put(_FakeRecord(seqnum), {"view": {name: copy.deepcopy(value)}})
        except BaseException as exc:
            if op is not None:
                self.history.fail(op, error=repr(exc))
            raise
        if op is not None:
            self.history.ok(op, result=seqnum)
        return seqnum

    def delete_object(self, name: str) -> Generator:
        """Append a deletion marker; replay treats it as reset-to-missing.
        The GC function trims records of deleted objects (§5.5)."""
        seqnum = yield from self.book.append(
            {"kind": "delete_obj", "obj": name},
            tags=[object_tag(name), WRITE_STREAM_TAG],
        )
        yield from self.aux_put(_FakeRecord(seqnum), {"view": {name: None}})
        return seqnum

    # ------------------------------------------------------------------
    # Read path: accelerated log replay (Figure 9)
    # ------------------------------------------------------------------
    def get_object(self, name: str, at: int = MAX_SEQNUM) -> Generator:
        """Re-construct the object's state as of seqnum ``at``."""
        if self.history is not None and not self._hist_suppress and at == MAX_SEQNUM:
            op = self.history.invoke(self.client_name, "store.get", name)
            try:
                view = yield from self._get_object_impl(name, at)
            except BaseException as exc:
                self.history.fail(op, error=repr(exc))
                raise
            self.history.ok(op, result=view.as_dict())
            return view
        return (yield from self._get_object_impl(name, at))

    def _get_object_impl(self, name: str, at: int = MAX_SEQNUM) -> Generator:
        tag = object_tag(name)
        tail = yield from self.book.read_prev(tag=tag, max_seqnum=at)
        if tail is None:
            return ObjectView(name, None, 0)
        # Fast path: the tail record has a cached view for this object.
        view = yield from self._view_from_record(tail, name)
        if view is not None:
            yield from self._charge_decode(view[0])
            return ObjectView(name, view[0], tail.seqnum)
        # Common near-tail case: the record just before the tail has a
        # cached view (the tail is a fresh write), so one backward step
        # suffices (Figure 9's seek).
        state: Optional[dict] = None
        replay: List = [tail]
        prev = yield from self.book.read_prev(tag=tag, max_seqnum=tail.seqnum - 1)
        cached = None
        if prev is not None:
            cached = yield from self._view_from_record(prev, name)
        if prev is None:
            pass  # the tail is the object's only record
        elif cached is not None:
            state = cached[0]
        else:
            # Cold path: fetch the whole history in one batched range read
            # and scan backward in memory for the latest cached view.
            records = yield from self.book.read_range(
                tag=tag, min_seqnum=0, max_seqnum=tail.seqnum
            )
            resume = 0
            for i in range(len(records) - 1, -1, -1):
                cached = yield from self._view_from_record(records[i], name)
                if cached is not None:
                    state = cached[0]
                    resume = i + 1
                    break
            replay = records[resume:]
        # Replay forward, filling missing cached views.
        for record in replay:
            state = yield from self._apply_record(state, name, record)
            self.replayed_records += 1
            yield self.book.env.timeout(REPLAY_CPU_PER_RECORD)
            if self.fill_aux:
                current_aux = yield from self.aux_get(record)
                merged = self._merged_aux(
                    record, current_aux, {"view": {name: copy.deepcopy(state)}}
                )
                yield from self.aux_put(record, merged)
        yield from self._charge_decode(state)
        return ObjectView(name, copy.deepcopy(state), tail.seqnum)

    def _charge_decode(self, state: Optional[dict]) -> Generator:
        """Deserializing the object view (library cost; see module doc),
        proportional to the object's size."""
        if not self.decode_cost_per_kb or state is None:
            return
        from repro.core.types import _approx_size

        size_kb = _approx_size(state) / 1024.0
        cost = max(VIEW_DECODE_FLOOR, self.decode_cost_per_kb * size_kb)
        yield self.book.env.timeout(cost)

    def _view_from_record(self, record: LogRecord, name: str) -> Optional[Tuple[Optional[dict]]]:
        """The cached view of ``name`` on a record, as a 1-tuple (to
        distinguish 'cached None' = deleted from 'not cached'); None when
        absent. For commit records an unresolved outcome means no view."""
        aux = yield from self.aux_get(record)
        if isinstance(aux, dict) and "view" in aux and name in aux["view"]:
            return (copy.deepcopy(aux["view"][name]),)
        return None

    def _apply_record(self, state: Optional[dict], name: str, record: LogRecord) -> Generator:
        data = record.data
        kind = data["kind"]
        if kind == "write" and data["obj"] == name:
            return apply_ops(state, data["ops"])
        if kind == "delete_obj" and data["obj"] == name:
            return None
        if kind == "txn_commit" and name in data["writes"]:
            committed = yield from self.resolve_outcome(record)
            if committed:
                return apply_ops(state, data["writes"][name])
            return state
        return state

    # ------------------------------------------------------------------
    # Transaction outcome resolution (Figure 8)
    # ------------------------------------------------------------------
    def resolve_outcome(self, commit_record: LogRecord) -> Generator:
        """Decide a txn_commit's outcome: it commits iff no conflicting
        committed write landed in its conflict window (txn_start,
        txn_commit). The decision is cached in the record's aux data."""
        aux = yield from self.aux_get(commit_record)
        if isinstance(aux, dict) and "outcome" in aux:
            return aux["outcome"]
        data = commit_record.data
        write_set = set(data["writes"])
        start = data["start_seqnum"]
        outcome = True
        window = yield from self.book.iter_records(
            tag=WRITE_STREAM_TAG, min_seqnum=start + 1, max_seqnum=commit_record.seqnum - 1
        )
        for record in window:
            rdata = record.data
            if rdata["kind"] == "write" and rdata["obj"] in write_set:
                outcome = False
                break
            if rdata["kind"] == "delete_obj" and rdata["obj"] in write_set:
                outcome = False
                break
            if rdata["kind"] == "txn_commit" and write_set & set(rdata["writes"]):
                # A conflicting commit record: it conflicts only if it
                # itself committed (Figure 8: failed TxnB does not block
                # TxnC).
                other = yield from self.resolve_outcome(record)
                if other:
                    outcome = False
                    break
        current_aux = yield from self.aux_get(commit_record)
        merged = self._merged_aux(commit_record, current_aux, {"outcome": outcome})
        yield from self.aux_put(commit_record, merged)
        return outcome

    # ------------------------------------------------------------------
    # Tail position (read-only transaction snapshots)
    # ------------------------------------------------------------------
    def tail_seqnum(self) -> Generator:
        tail = yield from self.book.check_tail(tag=WRITE_STREAM_TAG)
        return tail.seqnum if tail is not None else 0


class _FakeRecord:
    """Just-appended records only need a seqnum for aux_put."""

    def __init__(self, seqnum: int):
        self.seqnum = seqnum
        self.auxdata = None
