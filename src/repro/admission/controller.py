"""Admission controllers: the gateway-side limiter and node-side windows.

Two cooperating pieces:

- :class:`AdmissionController` lives at the gateway. It combines the
  :class:`~repro.admission.limiter.AdaptiveLimiter` (how many requests
  may be inflight), deadline-aware early rejection (a request whose
  remaining deadline cannot cover the estimated service time is doomed —
  shed it before it wastes a worker slot), and the two priority classes:
  batch requests see only ``batch_share`` of the concurrency limit, so
  under overload batch sheds first and interactive degrades last.

- :class:`NodeAdmission` guards one engine or storage node with a
  :class:`~repro.admission.window.BoundedWindow` (hard inflight cap) and
  a :class:`~repro.admission.window.CoDelShedder` over the *estimated*
  queue delay (``inflight x service_time`` — the deterministic analogue
  of measuring sojourn at dequeue). A node-level shed surfaces to the
  caller as :class:`~repro.admission.errors.Overloaded`, propagates up
  the RPC relay chain, and lands in the gateway limiter as a
  multiplicative-decrease backpressure signal: storage -> engine ->
  gateway.

Elasticity integration (:meth:`AdmissionController.armed`): shedding is
the *last* resort. While the cluster can still scale out — an autoscaler
is attached, the fleet is below ``max_nodes``, and no reconfiguration is
in flight — concurrency/window/CoDel shedding stays disarmed and the
surge is absorbed by queues until new capacity arrives. Only at
``max_nodes`` (or mid-reconfiguration, when adding capacity is
momentarily impossible) does load shedding engage. Deadline-based
rejection is always armed: executing a request that cannot meet its
deadline is waste at any fleet size.

Determinism: every decision is arithmetic over observed state — no RNG,
no kernel events — and under-capacity traffic never trips a limit, so
fault-free runs stay byte-identical with admission enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.admission.errors import BATCH, INTERACTIVE, Overloaded
from repro.admission.limiter import AdaptiveLimiter

#: Default node-side window sizes: generous enough that only saturating
#: load trips them (engine appends and storage writes both complete in
#: well under a millisecond of service time).
ENGINE_WINDOW = 512
STORAGE_WINDOW = 512


class AdmissionController:
    """Gateway-side admission control: limiter + deadlines + priorities."""

    def __init__(
        self,
        env,
        limiter: Optional[AdaptiveLimiter] = None,
        batch_share: float = 0.7,
        default_service: float = 0.010,
    ):
        if not 0.0 < batch_share <= 1.0:
            raise ValueError("batch_share must be in (0, 1]")
        self.env = env
        self.limiter = limiter or AdaptiveLimiter()
        self.batch_share = batch_share
        self.default_service = default_service
        #: Cluster backref (set by ``BokiCluster.enable_admission``) —
        #: read lazily so enable-order between admission, elasticity and
        #: monitoring does not matter.
        self.cluster = None
        self.nodes: List["NodeAdmission"] = []
        self.admitted: Dict[str, int] = {INTERACTIVE: 0, BATCH: 0}
        self.shed: Dict[str, int] = {}
        self.shed_by_priority: Dict[str, int] = {INTERACTIVE: 0, BATCH: 0}
        self.downstream_overloads = 0

    # ------------------------------------------------------------------
    # Elasticity gating
    # ------------------------------------------------------------------
    def armed(self) -> bool:
        """Whether load shedding is engaged (see module docstring)."""
        elastic = getattr(self.cluster, "elastic", None)
        if elastic is None:
            return True
        if getattr(elastic, "reconfiguring", False):
            return True
        can_grow = getattr(elastic, "can_scale_out", None)
        return not can_grow() if can_grow is not None else True

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------
    def check(self, inflight: int, priority: str = INTERACTIVE,
              deadline: Optional[float] = None) -> None:
        """Admit or shed one gateway arrival; raises :class:`Overloaded`
        on shed, returns normally (and accounts the admit) otherwise."""
        now = self.env.now
        est = self.limiter.service_estimate(self.default_service)
        if deadline is not None and deadline - now < est:
            self._shed(now, priority, "deadline", retry_after=0.0)
        if self.armed():
            limit = self.limiter.limit
            effective = limit if priority == INTERACTIVE else int(limit * self.batch_share)
            if inflight >= max(1, effective):
                self._shed(now, priority, "concurrency-limit",
                           retry_after=self._retry_after(inflight, est))
        self.admitted[priority] = self.admitted.get(priority, 0) + 1
        monitor = getattr(self.cluster, "monitor", None)
        if monitor is not None:
            monitor.on_admission(now, True, priority, "ok")

    def _shed(self, now: float, priority: str, reason: str,
              retry_after: float) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.shed_by_priority[priority] = self.shed_by_priority.get(priority, 0) + 1
        monitor = getattr(self.cluster, "monitor", None)
        if monitor is not None:
            monitor.on_admission(now, False, priority, reason)
        raise Overloaded("gateway", reason, retry_after=retry_after,
                         priority=priority)

    def _retry_after(self, inflight: int, est: float) -> float:
        limit = max(1, self.limiter.limit)
        over = max(0, inflight - limit)
        return est * (1.0 + over / limit)

    # ------------------------------------------------------------------
    # Feedback signals
    # ------------------------------------------------------------------
    def on_success(self, latency: float) -> None:
        """An admitted invocation completed OK end-to-end."""
        self.limiter.on_success(latency)

    def on_downstream_overload(self) -> None:
        """An admitted invocation was shed deeper in the stack (engine or
        storage window): multiplicative decrease at the gateway."""
        self.downstream_overloads += 1
        self.limiter.on_overload()

    # ------------------------------------------------------------------
    # Node registration + verdict snapshot
    # ------------------------------------------------------------------
    def register_node(self, node: "NodeAdmission") -> None:
        self.nodes.append(node)

    def total_shed(self) -> int:
        return (sum(self.shed.values())
                + sum(n.window.shed for n in self.nodes))

    def snapshot(self) -> dict:
        """Deterministic counters for verdict artifacts."""
        return {
            "limiter": self.limiter.snapshot(),
            "admitted": dict(sorted(self.admitted.items())),
            "shed": dict(sorted(self.shed.items())),
            "shed_by_priority": dict(sorted(self.shed_by_priority.items())),
            "downstream_overloads": self.downstream_overloads,
            "nodes": [n.snapshot() for n in sorted(self.nodes,
                                                   key=lambda n: n.resource)],
        }


class NodeAdmission:
    """Bounded window + CoDel guard for one engine or storage node."""

    def __init__(
        self,
        env,
        resource: str,
        capacity: int,
        service_time: float,
        codel_target: float = 0.010,
        codel_interval: float = 0.100,
        controller: Optional[AdmissionController] = None,
    ):
        from repro.admission.window import BoundedWindow, CoDelShedder

        self.env = env
        self.resource = resource
        self.service_time = service_time
        self.window = BoundedWindow(capacity)
        self.codel = CoDelShedder(target=codel_target, interval=codel_interval)
        self.controller = controller
        if controller is not None:
            controller.register_node(self)

    def try_enter(self, priority: str = INTERACTIVE) -> None:
        """Admit one arrival into the node's window or raise
        :class:`Overloaded`. Callers must pair with :meth:`exit`."""
        now = self.env.now
        armed = self.controller is None or self.controller.armed()
        if armed:
            est_delay = self.window.inflight * self.service_time
            if self.window.full:
                self.window.shed += 1
                self._notify(now, priority, "window-full")
                raise Overloaded(self.resource, "window-full",
                                 retry_after=est_delay, priority=priority)
            if self.codel.should_drop(now, est_delay):
                self.window.shed += 1
                self._notify(now, priority, "queue-delay")
                raise Overloaded(self.resource, "queue-delay",
                                 retry_after=max(est_delay, self.codel.target),
                                 priority=priority)
        self.window.enter()

    def exit(self) -> None:
        self.window.exit()

    def _notify(self, now: float, priority: str, reason: str) -> None:
        if self.controller is not None:
            monitor = getattr(self.controller.cluster, "monitor", None)
            if monitor is not None:
                monitor.on_admission(now, False, priority,
                                     f"{self.resource}:{reason}")

    def snapshot(self) -> dict:
        return {
            "resource": self.resource,
            "capacity": self.window.capacity,
            "inflight": self.window.inflight,
            "peak": self.window.peak,
            "admitted": self.window.admitted,
            "shed": self.window.shed,
            "codel_dropped": self.codel.dropped,
        }
