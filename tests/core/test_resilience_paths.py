"""Resilience machinery: lost metadata messages, stalled subscriptions."""

import pytest

from repro.core import BokiCluster


class TestIndexMetaLoss:
    def test_lost_meta_messages_recovered_from_storage(self):
        """The appending engine ships record metadata to index engines as
        one-way messages; if they are lost (here: a partition between the
        appender and an index engine), the index engine's subscription
        stalls and its maintenance loop must fetch the metadata from
        storage nodes so reads eventually succeed."""
        c = BokiCluster(num_function_nodes=2, num_storage_nodes=3, index_engines_per_log=2)
        c.boot()
        writer_name, reader_name = "func-0", "func-1"
        # Cut ONLY the engine-to-engine link; both still reach storage and
        # sequencers.
        c.net.partition(writer_name, reader_name)

        def flow():
            writer = c.logbook(1, engine=c.engine_of(writer_name))
            yield from writer.append("needs-meta", tags=[3])
            # Give the reader's maintenance loop time to notice the stall
            # and fetch metadata from storage (STALL_FETCH_DELAY + poll).
            yield c.env.timeout(0.05)
            reader = c.logbook(1, engine=c.engine_of(reader_name))
            record = yield from reader.read_next(tag=3, min_seqnum=0)
            return record.data if record else None

        assert c.drive(flow(), limit=120.0) == "needs-meta"

    def test_reader_on_writer_engine_unaffected_by_meta_loss(self):
        c = BokiCluster(num_function_nodes=2, num_storage_nodes=3, index_engines_per_log=2)
        c.boot()
        c.net.partition("func-0", "func-1")

        def flow():
            book = c.logbook(1, engine=c.engine_of("func-0"))
            yield from book.append("local", tags=[3])
            record = yield from book.read_next(tag=3, min_seqnum=0)
            return record.data

        assert c.drive(flow(), limit=120.0) == "local"


class TestStorageReplicaLoss:
    def test_read_falls_over_to_surviving_replicas(self):
        """A storage replica crashing after a record was stored must not
        break reads: the engine rotates to surviving backers."""
        c = BokiCluster(num_function_nodes=1, num_storage_nodes=3)
        c.boot()

        def flow():
            book = c.logbook(1)
            seqnum = yield from book.append("replicated", tags=[2])
            # Drop the record from the engine cache so the read must go to
            # storage, then kill one backer.
            c.any_engine().cache.drop(seqnum)
            backers = c.term.assignment(0).shard_storage["func-0"]
            c.controller.components[backers[0]].node.crash()
            record = yield from book.read_next(tag=2, min_seqnum=0)
            return record.data

        assert c.drive(flow(), limit=120.0) == "replicated"


class TestMidRunEngineDeath:
    def test_surviving_engines_keep_appending(self):
        """An engine (function node) crash mid-run: other engines' appends
        continue once reconfiguration removes the dead shard from the
        progress computation."""
        c = BokiCluster(
            num_function_nodes=3, num_storage_nodes=3, use_coord_sessions=True
        )
        c.boot()

        def flow():
            book0 = c.logbook(1, engine=c.engine_of("func-0"))
            yield from book0.append("before-crash")
            c.function_nodes[2].node.crash()
            yield c.env.timeout(6.0)  # failure detection + reconfig
            yield from book0.append("after-crash")
            records = yield from book0.iter_records()
            return [r.data for r in records]

        data = c.drive(flow(), limit=200.0)
        assert data == ["before-crash", "after-crash"]
        assert c.controller.reconfig_count >= 1
