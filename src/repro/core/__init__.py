"""Boki core: shared logs with the metalog mechanism.

This package implements the paper's primary contribution (§3–§4):

- :mod:`repro.core.types` — seqnums ``(term_id, log_id, pos)``, log records,
  tags, and the metalog position type used for consistency checks.
- :mod:`repro.core.metalog` — the metalog: entries carrying global progress
  vectors and trim commands, with primary-driven quorum replication.
- :mod:`repro.core.sequencer` — sequencer nodes hosting metalog replicas;
  the primary computes global progress vectors from storage reports and
  appends metalog entries (Scalog-style ordering, §4.3).
- :mod:`repro.core.storage` — storage nodes: shard replica stores, progress
  reporting, reads by seqnum, background trim reclamation.
- :mod:`repro.core.ordering` — delta sets: how metalog entries assign
  seqnums across shards (Figure 3).
- :mod:`repro.core.index` — the log index: ``(book_id, tag)`` rows of
  sorted seqnums, updated from the metalog (§4.4, Figure 4).
- :mod:`repro.core.cache` — the engine's LRU record/aux-data cache.
- :mod:`repro.core.engine` — LogBook engines: the append and read paths,
  observable-consistency checks (Figure 5).
- :mod:`repro.core.logbook` — the user-facing LogBook API (Figure 1).
- :mod:`repro.core.hashing` — consistent hashing (Dynamo strategy 3)
  mapping LogBooks onto physical logs.
- :mod:`repro.core.controller` — the control plane: failure detection and
  the sealing-based reconfiguration protocol (§4.5).
- :mod:`repro.core.cluster` — assembles a full Boki deployment.
"""

from repro.core.cluster import BokiCluster
from repro.core.config import BokiConfig
from repro.core.logbook import LogBook, LogBookError
from repro.core.stats import ClusterStats, collect_stats
from repro.core.types import (
    MAX_SEQNUM,
    LogRecord,
    MetalogPosition,
    pack_seqnum,
    seqnum_log_id,
    seqnum_pos,
    seqnum_term,
    unpack_seqnum,
)

__all__ = [
    "BokiCluster",
    "BokiConfig",
    "ClusterStats",
    "collect_stats",
    "LogBook",
    "LogBookError",
    "LogRecord",
    "MAX_SEQNUM",
    "MetalogPosition",
    "pack_seqnum",
    "seqnum_log_id",
    "seqnum_pos",
    "seqnum_term",
    "unpack_seqnum",
]
