"""The coordination server: znode tree, sessions, watches.

Semantics follow ZooKeeper closely enough for Boki's needs:

- znodes are path-keyed blobs with a monotonically increasing version;
- ephemeral znodes are bound to a session and deleted when it expires;
- watches are one-shot triggers on create/update/delete of a path, or on
  membership changes under a path prefix ("children watches");
- sessions expire when no heartbeat arrives within the session timeout,
  which is how Boki detects node failures (§4.2).

The server's state machine is synchronous (handlers are plain functions);
only session-expiry sweeping runs as a background process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.node import Node


class NoNodeError(Exception):
    """The requested znode does not exist."""


class NodeExistsError(Exception):
    """A create collided with an existing znode."""


class BadVersionError(Exception):
    """A conditional set/delete specified a stale version."""


class SessionExpiredError(Exception):
    """The session backing this request has expired."""


@dataclass
class WatchEvent:
    """Delivered to watchers when a watched znode (or prefix) changes."""

    kind: str  # "created" | "changed" | "deleted" | "children"
    path: str
    data: Any = None


@dataclass
class _ZNode:
    data: Any
    version: int = 0
    ephemeral_session: Optional[int] = None


@dataclass
class _Session:
    session_id: int
    owner: str
    timeout: float
    last_heartbeat: float
    ephemerals: Set[str] = field(default_factory=set)
    expired: bool = False


class CoordServer:
    """Hosts the coordination state machine on a simulated node."""

    SWEEP_INTERVAL = 0.5

    def __init__(self, env: Environment, net: Network, node: Node):
        self.env = env
        self.net = net
        self.node = node
        self._tree: Dict[str, _ZNode] = {}
        self._sessions: Dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        # path -> list of (watcher_node_name, method) one-shot watches
        self._watches: Dict[str, List[str]] = {}
        self._child_watches: Dict[str, List[str]] = {}
        self.expired_sessions: List[int] = []
        self._register_handlers()
        node.spawn(self._sweep_sessions(), name="coord-sweep")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        handlers: Dict[str, Callable] = {
            "coord.create": self._h_create,
            "coord.set": self._h_set,
            "coord.get": self._h_get,
            "coord.delete": self._h_delete,
            "coord.exists": self._h_exists,
            "coord.children": self._h_children,
            "coord.watch": self._h_watch,
            "coord.watch_children": self._h_watch_children,
            "coord.session_create": self._h_session_create,
            "coord.heartbeat": self._h_heartbeat,
            "coord.session_close": self._h_session_close,
        }
        for method, handler in handlers.items():
            self.node.handle(method, handler)

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def _h_session_create(self, payload: dict) -> int:
        session = _Session(
            session_id=next(self._session_ids),
            owner=payload["owner"],
            timeout=payload["timeout"],
            last_heartbeat=self.env.now,
        )
        self._sessions[session.session_id] = session
        return session.session_id

    def _h_heartbeat(self, payload: dict) -> bool:
        session = self._sessions.get(payload["session_id"])
        if session is None or session.expired:
            raise SessionExpiredError(payload["session_id"])
        session.last_heartbeat = self.env.now
        return True

    def _h_session_close(self, payload: dict) -> bool:
        session = self._sessions.get(payload["session_id"])
        if session is None:
            return False
        self._expire(session)
        return True

    def _sweep_sessions(self) -> Generator:
        while True:
            yield self.env.timeout(self.SWEEP_INTERVAL)
            now = self.env.now
            for session in list(self._sessions.values()):
                if not session.expired and now - session.last_heartbeat > session.timeout:
                    self._expire(session)

    def _expire(self, session: _Session) -> None:
        session.expired = True
        self._sessions.pop(session.session_id, None)
        self.expired_sessions.append(session.session_id)
        for path in sorted(session.ephemerals):
            if path in self._tree:
                self._delete_znode(path)

    def session_alive(self, session_id: int) -> bool:
        return session_id in self._sessions

    # ------------------------------------------------------------------
    # znode CRUD
    # ------------------------------------------------------------------
    def _h_create(self, payload: dict) -> int:
        path, data = payload["path"], payload.get("data")
        if path in self._tree:
            raise NodeExistsError(path)
        session_id = payload.get("session_id")
        if payload.get("ephemeral"):
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionExpiredError(session_id)
            session.ephemerals.add(path)
            self._tree[path] = _ZNode(data, ephemeral_session=session_id)
        else:
            self._tree[path] = _ZNode(data)
        self._fire(path, WatchEvent("created", path, data))
        self._fire_children(path)
        return 0

    def _h_set(self, payload: dict) -> int:
        path = payload["path"]
        znode = self._tree.get(path)
        if znode is None:
            raise NoNodeError(path)
        expected = payload.get("version")
        if expected is not None and expected != znode.version:
            raise BadVersionError(f"{path}: expected {expected}, have {znode.version}")
        znode.data = payload.get("data")
        znode.version += 1
        self._fire(path, WatchEvent("changed", path, znode.data))
        return znode.version

    def _h_get(self, payload: dict) -> dict:
        znode = self._tree.get(payload["path"])
        if znode is None:
            raise NoNodeError(payload["path"])
        return {"data": znode.data, "version": znode.version}

    def _h_delete(self, payload: dict) -> bool:
        path = payload["path"]
        znode = self._tree.get(path)
        if znode is None:
            raise NoNodeError(path)
        expected = payload.get("version")
        if expected is not None and expected != znode.version:
            raise BadVersionError(f"{path}: expected {expected}, have {znode.version}")
        self._delete_znode(path)
        return True

    def _delete_znode(self, path: str) -> None:
        znode = self._tree.pop(path)
        if znode.ephemeral_session is not None:
            session = self._sessions.get(znode.ephemeral_session)
            if session is not None:
                session.ephemerals.discard(path)
        self._fire(path, WatchEvent("deleted", path))
        self._fire_children(path)

    def _h_exists(self, payload: dict) -> bool:
        return payload["path"] in self._tree

    def _h_children(self, payload: dict) -> List[str]:
        prefix = payload["path"].rstrip("/") + "/"
        return sorted(p for p in self._tree if p.startswith(prefix))

    # ------------------------------------------------------------------
    # Watches: one-shot, delivered as one-way messages to the watcher node
    # ------------------------------------------------------------------
    def _h_watch(self, payload: dict) -> bool:
        self._watches.setdefault(payload["path"], []).append(payload["watcher"])
        return True

    def _h_watch_children(self, payload: dict) -> bool:
        prefix = payload["path"].rstrip("/") + "/"
        self._child_watches.setdefault(prefix, []).append(payload["watcher"])
        return True

    def _fire(self, path: str, event: WatchEvent) -> None:
        for watcher in self._watches.pop(path, []):
            self.net.send(self.node, watcher, "coord.watch_event", event)

    def _fire_children(self, path: str) -> None:
        for prefix in list(self._child_watches):
            if path.startswith(prefix):
                event = WatchEvent("children", prefix.rstrip("/"))
                for watcher in self._child_watches.pop(prefix):
                    self.net.send(self.node, watcher, "coord.watch_event", event)
