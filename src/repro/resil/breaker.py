"""Per-destination circuit breakers.

A breaker tracks consecutive transport failures toward one destination
node. After ``failure_threshold`` consecutive failures it *opens*: calls
fail fast with :class:`CircuitOpenError` (or, in failover paths, skip to
the next candidate) without generating network traffic — so a dead or
partitioned node stops accumulating doomed in-flight requests and their
timeout latency. After ``reset_timeout`` of virtual time the breaker
goes *half-open* and admits a single probe; a successful probe closes
it, a failed probe re-opens it for another ``reset_timeout``.

All transitions are driven by the simulation clock and call outcomes —
no randomness — so breaker behavior is identical across same-seed runs.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(Exception):
    """The destination's circuit breaker is open; the call was not sent."""

    def __init__(self, destination: str):
        super().__init__(f"circuit open for destination {destination!r}")
        self.destination = destination


class CircuitBreaker:
    """Failure-counting breaker for one destination."""

    def __init__(self, env, destination: str, failure_threshold: int = 5,
                 reset_timeout: float = 0.25):
        self.env = env
        self.destination = destination
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._failures = 0
        self._opened_at = None
        self._probing = False
        #: How many times the breaker tripped open (including re-opens
        #: after a failed half-open probe).
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self.env.now >= self._opened_at + self.reset_timeout:
            return HALF_OPEN
        return OPEN

    def allow(self) -> bool:
        """Whether a call to this destination may proceed now. A True
        answer in the half-open state claims the single probe slot."""
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        if self._opened_at is not None:
            # Failed half-open probe: re-open for another reset window.
            self._opened_at = self.env.now
            self.trips += 1
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self.env.now
            self.trips += 1
