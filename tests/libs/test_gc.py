"""Tests for the garbage-collector functions (§5.5)."""

import pytest

from repro.libs.bokiflow import BokiFlowRuntime
from repro.libs.bokiflow.env import step_tag
from repro.libs.bokiqueue import BokiQueue
from repro.libs.bokistore import BokiStore, object_tag
from repro.libs.gc import gc_deleted_objects, gc_queue, gc_workflow
from tests.libs.conftest import drive


def set_op(path, value):
    return {"op": "set", "path": path, "value": value}


class TestWorkflowGC:
    def test_completed_workflow_trimmed(self, cluster):
        runtime = BokiFlowRuntime(cluster)

        def body(env, arg):
            yield from env.write("t", "k", "v")
            return "ok"

        runtime.register_workflow("wf", body)

        def flow():
            wf_id = runtime.new_workflow_id()
            yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
            book = cluster.logbook(1)
            trimmed = yield from gc_workflow(book, wf_id, steps=2)
            yield cluster.env.timeout(0.05)
            # The step's record must be gone from the index.
            leftover = yield from book.read_next(tag=step_tag(wf_id, 0), min_seqnum=0)
            return trimmed, leftover

        trimmed, leftover = drive(cluster, flow())
        assert trimmed is True
        assert leftover is None

    def test_incomplete_workflow_not_trimmed(self, cluster):
        runtime = BokiFlowRuntime(cluster)

        def flow():
            book = cluster.logbook(1)
            # Workflow never ran: no done marker.
            return (yield from gc_workflow(book, "never-ran", steps=1))

        assert drive(cluster, flow()) is False


class TestStoreGC:
    def test_deleted_object_trimmed(self, cluster):
        def flow():
            book = cluster.logbook(2)
            store = BokiStore(book)
            yield from store.update("x", [set_op("v", 1)])
            yield from store.delete_object("x")
            trimmed = yield from gc_deleted_objects(book, store, ["x"])
            yield cluster.env.timeout(0.05)
            leftover = yield from book.read_next(tag=object_tag("x"), min_seqnum=0)
            return trimmed, leftover

        trimmed, leftover = drive(cluster, flow())
        assert trimmed == ["x"]
        assert leftover is None

    def test_live_object_not_trimmed(self, cluster):
        def flow():
            book = cluster.logbook(2)
            store = BokiStore(book)
            yield from store.update("x", [set_op("v", 1)])
            trimmed = yield from gc_deleted_objects(book, store, ["x"])
            view = yield from store.get_object("x")
            return trimmed, view.get("v")

        assert drive(cluster, flow()) == ([], 1)

    def test_recreated_object_not_trimmed(self, cluster):
        def flow():
            book = cluster.logbook(2)
            store = BokiStore(book)
            yield from store.update("x", [set_op("v", 1)])
            yield from store.delete_object("x")
            yield from store.update("x", [set_op("v", 2)])
            trimmed = yield from gc_deleted_objects(book, store, ["x"])
            view = yield from store.get_object("x")
            return trimmed, view.get("v")

        assert drive(cluster, flow()) == ([], 2)


class TestQueueGC:
    def test_drained_shard_fully_trimmed(self, cluster):
        def flow():
            q = BokiQueue(cluster.logbook(3), "q")
            producer, consumer = q.producer(), q.consumer(0)
            for i in range(3):
                yield from producer.push(i)
            for _ in range(3):
                yield from consumer.pop()
            trimmed = yield from gc_queue(q)
            yield cluster.env.timeout(0.05)
            # Queue still works after trim.
            yield from producer.push("post-gc")
            value = yield from consumer.pop()
            return trimmed, value

        trimmed, value = drive(cluster, flow())
        assert trimmed[0] is not None
        assert value == "post-gc"

    def test_pending_messages_survive_gc(self, cluster):
        def flow():
            q = BokiQueue(cluster.logbook(3), "q")
            producer, consumer = q.producer(), q.consumer(0)
            yield from producer.push("a")
            yield from producer.push("b")
            yield from consumer.pop()  # takes "a"; "b" still pending
            yield from gc_queue(q)
            yield cluster.env.timeout(0.05)
            return (yield from consumer.pop())

        assert drive(cluster, flow()) == "b"

    def test_empty_queue_gc_noop(self, cluster):
        def flow():
            q = BokiQueue(cluster.logbook(3), "q-empty")
            return (yield from gc_queue(q))

        assert drive(cluster, flow()) == [None]

    def test_gc_preserves_fifo_after_partial_drain(self, cluster):
        """GC must only trim at empty points: replay after GC still
        assigns pops the right pushes."""
        def flow():
            q = BokiQueue(cluster.logbook(3), "q")
            producer, consumer = q.producer(), q.consumer(0)
            yield from producer.push(1)
            yield from producer.push(2)
            yield from consumer.pop()  # 1
            yield from gc_queue(q)     # cannot trim past push(2)
            yield c_timeout(cluster)
            second = yield from consumer.pop()
            third = yield from consumer.pop()
            return second, third

        def c_timeout(c):
            return c.env.timeout(0.05)

        assert drive(cluster, flow()) == (2, None)
