"""Bounded inflight windows and CoDel-style queue-delay shedding.

These are the *node-side* half of admission control: engines and storage
nodes used to queue work unboundedly on their CPU resources, which is
what makes overload metastable — by the time a request reaches the
front, its client has timed out and retried, so the server burns all its
capacity on dead work. A :class:`BoundedWindow` caps how much work a
node accepts at all; a :class:`CoDelShedder` additionally sheds when the
*standing* queue delay has exceeded a target for a sustained interval,
following the CoDel discipline (Nichols & Jacobson, CACM 2012): shed one
request when the delay has been above ``target`` for a full
``interval``, then the next after ``interval/sqrt(2)``, then
``interval/sqrt(3)`` — the shed rate ramps up until the queue drains
back below target.

Both are pure arithmetic state machines (no RNG, no kernel events):
under-capacity traffic never trips them, preserving byte-identical
fault-free runs with admission enabled.
"""

from __future__ import annotations

from math import sqrt
from typing import Optional


class BoundedWindow:
    """A hard cap on concurrently admitted work at one node."""

    __slots__ = ("capacity", "inflight", "peak", "admitted", "shed")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.capacity = capacity
        self.inflight = 0
        self.peak = 0
        self.admitted = 0
        self.shed = 0

    @property
    def full(self) -> bool:
        return self.inflight >= self.capacity

    def enter(self) -> None:
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak:
            self.peak = self.inflight

    def exit(self) -> None:
        if self.inflight <= 0:
            raise RuntimeError("window exit without a matching enter")
        self.inflight -= 1


class CoDelShedder:
    """CoDel-style controlled-delay shedding over an observed sojourn.

    Call :meth:`should_drop` at each arrival with the current time and
    the request's (estimated or measured) queue delay. Below ``target``
    the controller resets; above ``target`` for a sustained ``interval``
    it enters the dropping state and sheds at an increasing rate
    (``interval / sqrt(drop_count)`` between sheds) until the delay
    falls back under target.
    """

    __slots__ = ("target", "interval", "first_above", "drop_next",
                 "count", "dropped")

    def __init__(self, target: float = 0.010, interval: float = 0.100):
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        #: Time at which a sojourn first exceeded target (+interval gives
        #: the earliest permissible drop); None while below target.
        self.first_above: Optional[float] = None
        self.drop_next = 0.0
        self.count = 0
        self.dropped = 0

    def should_drop(self, now: float, sojourn: float) -> bool:
        if sojourn < self.target:
            self.first_above = None
            self.count = 0
            return False
        if self.first_above is None:
            self.first_above = now + self.interval
            return False
        if now < self.first_above:
            return False
        if now >= self.drop_next:
            self.count += 1
            self.dropped += 1
            self.drop_next = now + self.interval / sqrt(self.count)
            return True
        return False
