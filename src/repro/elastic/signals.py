"""Load signals for the elastic control loop.

:class:`SignalSampler` turns a running cluster's component state into
timestamped gauges in a :class:`~repro.obs.registry.MetricsRegistry` —
the same registry namespace ``registry_from_cluster`` populates — and
returns the derived utilizations the policy consumes:

- **engine demand**: worker slots in use plus invocations queued for a
  slot, over the *active* fleet's slot capacity. Queued work counts,
  so a saturated fleet reads above 1.0 and the policy sees how far
  behind it is, not just that it is busy.
- **gateway queue depth**: total invocations waiting for a worker slot.
- **storage demand**: replica-write rate (new records per second across
  the active storage fleet, measured as a counter delta per sample
  interval) against the per-node write budget, plus the instantaneous
  CPU busy fraction as a recorded gauge.
- **per-shard append rates**: each engine owns one shard of every log,
  so per-engine append-counter deltas are the per-shard rates the
  rebalancer and tests inspect.

Sampling reads counters and resource occupancy only — it never creates
simulation events — so an autoscaler that takes no action leaves the
virtual timeline untouched.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.registry import MetricsRegistry


class SignalSampler:
    """Samples cluster load into timestamped gauges + a signal dict."""

    def __init__(self, cluster, registry: MetricsRegistry,
                 storage_write_budget: float = 4000.0):
        self.cluster = cluster
        self.registry = registry
        #: Replica writes per second one storage node is budgeted for;
        #: storage utilization is measured rate / (budget * fleet size).
        self.storage_write_budget = storage_write_budget
        self._last_t: float = cluster.env.now
        self._last_appends: Dict[str, int] = {}
        self._last_records: int = -1  # -1: no baseline sample yet

    def sample(self, active_engines: Sequence[str],
               active_storage: Sequence[str]) -> Dict[str, float]:
        cluster = self.cluster
        now = cluster.env.now
        dt = now - self._last_t
        active_e = set(active_engines)
        active_s = set(active_storage)

        in_use = queued = capacity = 0
        for fnode in cluster.function_nodes:
            if fnode.name not in active_e or not fnode.node.alive:
                continue
            in_use += fnode.workers.in_use
            queued += fnode.workers.queued
            capacity += fnode.workers.capacity
        engine_util = (in_use + queued) / capacity if capacity else 0.0

        append_rate_total = 0.0
        for name, engine in sorted(cluster.engines.items()):
            appends = engine.appends_started
            delta = appends - self._last_appends.get(name, appends)
            self._last_appends[name] = appends
            rate = delta / dt if dt > 0 else 0.0
            if name in active_e:
                append_rate_total += rate
            self.registry.gauge(f"elastic.shard_rate.{name}").record(now, rate)

        records = cpu_busy = 0
        storage_cpus = 0
        for snode in cluster.storage_nodes:
            records += len(snode._by_seqnum)
            if snode.name in active_s and snode.node.alive:
                cpu_busy += snode.node.cpu.in_use
                storage_cpus += snode.node.cpu.capacity
        write_delta = records - self._last_records if self._last_records >= 0 else 0
        self._last_records = records
        write_rate = write_delta / dt if dt > 0 else 0.0
        budget = self.storage_write_budget * max(1, len(active_storage))
        storage_util = write_rate / budget if budget else 0.0
        storage_busy = cpu_busy / storage_cpus if storage_cpus else 0.0

        self._last_t = now
        signals = {
            "queue_depth": float(queued),
            "demand_slots": float(in_use + queued),
            "capacity_slots": float(capacity),
            "engine_util": engine_util,
            "storage_util": storage_util,
            "storage_busy": storage_busy,
            "append_rate": append_rate_total,
            "write_rate": write_rate,
        }
        reg = self.registry
        reg.gauge("elastic.gateway.queue_depth").record(now, signals["queue_depth"])
        reg.gauge("elastic.engine.demand_slots").record(now, signals["demand_slots"])
        reg.gauge("elastic.engine.capacity_slots").record(now, signals["capacity_slots"])
        reg.gauge("elastic.engine.util").record(now, engine_util)
        reg.gauge("elastic.storage.util").record(now, storage_util)
        reg.gauge("elastic.storage.busy").record(now, storage_busy)
        reg.gauge("elastic.append_rate.total").record(now, append_rate_total)
        return signals
