"""Tests for BokiStore: durable objects, transactions, aux replay (§5.2/5.4)."""

import pytest

from repro.libs.bokistore import BokiStore, Transaction, TxnConflictError
from tests.libs.conftest import drive


def make_store(cluster, book_id=9, fill_aux=True, engine=None):
    return BokiStore(cluster.logbook(book_id, engine=engine), fill_aux=fill_aux)


def set_op(path, value):
    return {"op": "set", "path": path, "value": value}


class TestObjects:
    def test_create_and_read(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("b", "foo")])
            view = yield from store.get_object("x")
            return view.get("b"), view.exists

        assert drive(cluster, flow()) == ("foo", True)

    def test_missing_object(self, cluster):
        store = make_store(cluster)

        def flow():
            view = yield from store.get_object("ghost")
            return view.exists, view.get("anything", "dflt")

        assert drive(cluster, flow()) == (False, "dflt")

    def test_updates_accumulate(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("a", 1)])
            yield from store.update("x", [set_op("b", 2)])
            yield from store.update("x", [{"op": "inc", "path": "a", "value": 10}])
            view = yield from store.get_object("x")
            return view.as_dict()

        assert drive(cluster, flow()) == {"a": 11, "b": 2}

    def test_objects_isolated(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", "xv")])
            yield from store.update("y", [set_op("v", "yv")])
            x = yield from store.get_object("x")
            y = yield from store.get_object("y")
            return x.get("v"), y.get("v")

        assert drive(cluster, flow()) == ("xv", "yv")

    def test_snapshot_read_at_position(self, cluster):
        store = make_store(cluster)

        def flow():
            s1 = yield from store.update("x", [set_op("v", 1)])
            yield from store.update("x", [set_op("v", 2)])
            old = yield from store.get_object("x", at=s1)
            new = yield from store.get_object("x")
            return old.get("v"), new.get("v")

        assert drive(cluster, flow()) == (1, 2)

    def test_delete_object(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", 1)])
            yield from store.delete_object("x")
            view = yield from store.get_object("x")
            return view.exists

        assert drive(cluster, flow()) is False

    def test_recreate_after_delete(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", 1)])
            yield from store.delete_object("x")
            yield from store.update("x", [set_op("v", 2)])
            view = yield from store.get_object("x")
            return view.as_dict()

        assert drive(cluster, flow()) == {"v": 2}

    def test_view_is_snapshot_not_alias(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", [1])])
            view = yield from store.get_object("x")
            view.as_dict()["v"].append(99)
            again = yield from store.get_object("x")
            return again.get("v")

        assert drive(cluster, flow()) == [1]


class TestConcurrentWriters:
    def test_interleaved_updates_never_poison_aux_views(self, cluster):
        """Two clients increment disjoint map slots concurrently. A writer
        whose read-append window was interleaved must NOT cache its
        (stale-based) view — readers must see every update (regression
        test for the lost-update-view bug)."""
        from repro.libs.bokistore import BokiStore

        stores = [
            BokiStore(cluster.logbook(44, engine=c))
            for c in list(cluster.engines.values())[:2]
        ]

        def writer(store, key_prefix, count):
            for i in range(count):
                yield from store.update(
                    "shared-map",
                    [{"op": "set", "path": f"data.{key_prefix}{i}", "value": i}],
                )

        p1 = cluster.env.process(writer(stores[0], "a", 6))
        p2 = cluster.env.process(writer(stores[1], "b", 6))
        cluster.env.run_until(p1, limit=300.0)
        cluster.env.run_until(p2, limit=300.0)

        def check():
            view = yield from stores[0].get_object("shared-map")
            return view.get("data")

        data = drive(cluster, check())
        assert len(data) == 12  # every key from both writers visible


class TestAuxReplay:
    def test_aux_disabled_still_correct(self, cluster):
        store = make_store(cluster, fill_aux=False)

        def flow():
            for i in range(5):
                yield from store.update("x", [set_op("v", i)])
            view = yield from store.get_object("x")
            return view.get("v")

        assert drive(cluster, flow()) == 4

    def test_aux_reduces_replay(self, cluster):
        """With view caching, a second reader replays far fewer records."""
        store = make_store(cluster)

        def write_many():
            for i in range(10):
                yield from store.update("x", [set_op("v", i)])

        drive(cluster, write_many())

        def read_once():
            view = yield from store.get_object("x")
            return view.get("v")

        before = store.replayed_records
        assert drive(cluster, read_once()) == 9
        # The writer already cached views, so the read replays ~0 records.
        assert store.replayed_records - before <= 1

    def test_no_aux_means_full_replay(self, cluster):
        store = make_store(cluster, fill_aux=False)
        store.aux_get = lambda record: iter(())  # pretend nothing cached

        def never_cached(record):
            if False:
                yield
            return None

        store.aux_get = never_cached

        def noop_put(record, aux):
            if False:
                yield
            return None

        store.aux_put = noop_put

        def flow():
            for i in range(8):
                yield from store.update("x", [set_op("v", i)])
            before = store.replayed_records
            view = yield from store.get_object("x")
            return view.get("v"), store.replayed_records - before

        value, replayed = drive(cluster, flow())
        assert value == 7
        assert replayed == 8  # every record replayed


class TestTransactions:
    def test_commit_visible(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("acct", [set_op("balance", 100)])
            txn = yield from Transaction(store).begin()
            acct = yield from txn.get_object("acct")
            acct.inc("balance", -30)
            ok = yield from txn.commit()
            view = yield from store.get_object("acct")
            return ok, view.get("balance")

        assert drive(cluster, flow()) == (True, 70)

    def test_cross_object_transaction(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("alice", [set_op("balance", 100)])
            yield from store.update("bob", [set_op("balance", 0)])
            txn = yield from Transaction(store).begin()
            alice = yield from txn.get_object("alice")
            bob = yield from txn.get_object("bob")
            alice.inc("balance", -10)
            bob.inc("balance", 10)
            ok = yield from txn.commit()
            a = yield from store.get_object("alice")
            b = yield from store.get_object("bob")
            return ok, a.get("balance"), b.get("balance")

        assert drive(cluster, flow()) == (True, 90, 10)

    def test_conflicting_write_aborts_txn(self, cluster):
        """A write landing in the conflict window aborts the commit."""
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", 0)])
            txn = yield from Transaction(store).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", "txn-value")
            # Interleave a normal write before the commit.
            yield from store.update("x", [set_op("v", "interloper")])
            ok = yield from txn.commit()
            view = yield from store.get_object("x")
            return ok, view.get("v")

        assert drive(cluster, flow()) == (False, "interloper")

    def test_figure8_scenario(self, cluster):
        """TxnB fails due to TxnA's conflicting commit; TxnC succeeds
        despite overlapping TxnB's write set, because TxnB failed."""
        store = make_store(cluster)

        def flow():
            # TxnA start | write Z | TxnB start | TxnA commit {X, Y} |
            # TxnC start | TxnB commit {Y, Z} | TxnC commit {X, Z}
            txn_a = yield from Transaction(store).begin()
            yield from store.update("Z", [set_op("v", "normal")])
            txn_b = yield from Transaction(store).begin()
            a_x = yield from txn_a.get_object("X")
            a_y = yield from txn_a.get_object("Y")
            a_x.set("v", "A")
            a_y.set("v", "A")
            ok_a = yield from txn_a.commit()
            txn_c = yield from Transaction(store).begin()
            b_y = yield from txn_b.get_object("Y")
            b_z = yield from txn_b.get_object("Z")
            b_y.set("v", "B")
            b_z.set("v", "B")
            ok_b = yield from txn_b.commit()
            c_x = yield from txn_c.get_object("X")
            c_z = yield from txn_c.get_object("Z")
            c_x.set("v", "C")
            c_z.set("v", "C")
            ok_c = yield from txn_c.commit()
            return ok_a, ok_b, ok_c

        assert drive(cluster, flow()) == (True, False, True)

    def test_snapshot_isolation_reads(self, cluster):
        """Reads inside a txn see the state at txn_start, not later writes."""
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", "initial")])
            txn = yield from Transaction(store).begin()
            yield from store.update("x", [set_op("v", "later")])
            obj = yield from txn.get_object("x")
            return obj.get("v")

        assert drive(cluster, flow()) == "initial"

    def test_readonly_txn_consistent_snapshot(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("a", [set_op("v", 1)])
            yield from store.update("b", [set_op("v", 1)])
            txn = yield from Transaction(store, readonly=True).begin()
            a = yield from txn.get_object("a")
            yield from store.update("b", [set_op("v", 2)])
            b = yield from txn.get_object("b")
            ok = yield from txn.commit()
            return a.get("v"), b.get("v"), ok

        assert drive(cluster, flow()) == (1, 1, True)

    def test_readonly_txn_cannot_write(self, cluster):
        store = make_store(cluster)

        def flow():
            txn = yield from Transaction(store, readonly=True).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", 1)

        with pytest.raises(RuntimeError):
            drive(cluster, flow())

    def test_empty_txn_commits(self, cluster):
        store = make_store(cluster)

        def flow():
            txn = yield from Transaction(store).begin()
            yield from txn.get_object("x")
            return (yield from txn.commit())

        assert drive(cluster, flow()) is True

    def test_aborted_txn_invisible(self, cluster):
        store = make_store(cluster)

        def flow():
            yield from store.update("x", [set_op("v", "keep")])
            txn = yield from Transaction(store).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", "discard")
            yield from txn.abort()
            view = yield from store.get_object("x")
            return view.get("v")

        assert drive(cluster, flow()) == "keep"

    def test_non_overlapping_txns_both_commit(self, cluster):
        store = make_store(cluster)

        def flow():
            t1 = yield from Transaction(store).begin()
            t2 = yield from Transaction(store).begin()
            o1 = yield from t1.get_object("x")
            o2 = yield from t2.get_object("y")
            o1.set("v", 1)
            o2.set("v", 2)
            ok1 = yield from t1.commit()
            ok2 = yield from t2.commit()
            return ok1, ok2

        assert drive(cluster, flow()) == (True, True)

    def test_raise_on_conflict(self, cluster):
        store = make_store(cluster)

        def flow():
            txn = yield from Transaction(store).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", 1)
            yield from store.update("x", [set_op("v", 2)])
            yield from txn.commit(raise_on_conflict=True)

        with pytest.raises(TxnConflictError):
            drive(cluster, flow())

    def test_txn_buffered_read_your_writes(self, cluster):
        store = make_store(cluster)

        def flow():
            txn = yield from Transaction(store).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", 5)
            return obj.get("v")

        assert drive(cluster, flow()) == 5
