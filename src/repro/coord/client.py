"""Per-node coordination client: session keepalive, CRUD, leader election.

Every Boki node holds a :class:`CoordClient`. The client maintains a session
with heartbeats; if the owning node crashes the heartbeats stop and the
server expires the session, deleting the node's ephemeral znodes — which is
exactly how Boki's controller observes node failures (§4.2, §4.5).

All client operations are generator functions consumed with ``yield from``
inside a simulation process::

    info = yield from client.get("/config")
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.kernel import Environment, Interrupt
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node
from repro.coord.server import NodeExistsError, WatchEvent

DEFAULT_SESSION_TIMEOUT = 2.0
HEARTBEAT_INTERVAL = 0.5


class CoordClient:
    """Client handle bound to one node; all calls go over the network."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        server_name: str = "coord",
        session_timeout: float = DEFAULT_SESSION_TIMEOUT,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.server_name = server_name
        self.session_timeout = session_timeout
        self.session_id: Optional[int] = None
        self._watch_handlers: List[Callable[[WatchEvent], None]] = []
        node.handle("coord.watch_event", self._on_watch_event)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def start_session(self) -> Generator:
        """Create a session and start the keepalive process."""
        self.session_id = yield from self._call(
            "coord.session_create",
            {"owner": self.node.name, "timeout": self.session_timeout},
        )
        self.node.spawn(self._keepalive(), name=f"{self.node.name}:coord-keepalive")
        return self.session_id

    def _keepalive(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(HEARTBEAT_INTERVAL)
                try:
                    yield self.net.rpc(
                        self.node,
                        self.server_name,
                        "coord.heartbeat",
                        {"session_id": self.session_id},
                        timeout=self.session_timeout,
                    )
                except (RpcError, RpcTimeout):
                    return  # session lost; owner must re-establish explicitly
        except Interrupt:
            return  # node crashed

    def close_session(self) -> Generator:
        if self.session_id is not None:
            yield from self._call("coord.session_close", {"session_id": self.session_id})
            self.session_id = None

    # ------------------------------------------------------------------
    # znode operations (consume with ``yield from``)
    # ------------------------------------------------------------------
    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.server_name, method, payload)
        except RpcError as exc:
            # RPC errors carry the remote exception; surface that directly.
            raise exc.cause from None
        return result

    def create(self, path: str, data: Any = None, ephemeral: bool = False) -> Generator:
        payload = {
            "path": path,
            "data": data,
            "ephemeral": ephemeral,
            "session_id": self.session_id,
        }
        return (yield from self._call("coord.create", payload))

    def set(self, path: str, data: Any, version: Optional[int] = None) -> Generator:
        return (yield from self._call("coord.set", {"path": path, "data": data, "version": version}))

    def get(self, path: str) -> Generator:
        return (yield from self._call("coord.get", {"path": path}))

    def delete(self, path: str, version: Optional[int] = None) -> Generator:
        return (yield from self._call("coord.delete", {"path": path, "version": version}))

    def exists(self, path: str) -> Generator:
        return (yield from self._call("coord.exists", {"path": path}))

    def children(self, path: str) -> Generator:
        return (yield from self._call("coord.children", {"path": path}))

    def watch(self, path: str) -> Generator:
        return (yield from self._call("coord.watch", {"path": path, "watcher": self.node.name}))

    def watch_children(self, path: str) -> Generator:
        return (yield from self._call("coord.watch_children", {"path": path, "watcher": self.node.name}))

    # ------------------------------------------------------------------
    # Watch delivery
    # ------------------------------------------------------------------
    def on_watch(self, handler: Callable[[WatchEvent], None]) -> None:
        """Register a callback invoked for every watch event delivered here."""
        self._watch_handlers.append(handler)

    def _on_watch_event(self, event: WatchEvent) -> None:
        for handler in list(self._watch_handlers):
            handler(event)


class LeaderElection:
    """Ephemeral-znode leader election, as used by Boki's controllers (§4.5).

    Each candidate tries to create the ephemeral election znode; the winner
    is leader until its session expires, at which point the deletion watch
    fires and the survivors race again.
    """

    def __init__(self, client: CoordClient, path: str = "/controller/leader"):
        self.client = client
        self.path = path
        self.is_leader = False
        self.leader_name: Optional[str] = None
        self._on_elected: List[Callable[[], None]] = []
        client.on_watch(self._watch_event)

    def on_elected(self, callback: Callable[[], None]) -> None:
        self._on_elected.append(callback)

    def campaign(self) -> Generator:
        """Try to become leader; returns True if won, False if lost.

        On loss, a watch is left on the znode so the next deletion re-runs
        the campaign automatically.
        """
        try:
            yield from self.client.create(self.path, self.client.node.name, ephemeral=True)
        except NodeExistsError:
            try:
                info = yield from self.client.get(self.path)
                self.leader_name = info["data"]
            except Exception:  # noqa: BLE001 - leader may vanish between calls
                self.leader_name = None
            yield from self.client.watch(self.path)
            return False
        self.is_leader = True
        self.leader_name = self.client.node.name
        for callback in list(self._on_elected):
            callback()
        return True

    def _watch_event(self, event: WatchEvent) -> None:
        if event.path != self.path or event.kind != "deleted":
            return
        if self.client.node.alive and not self.is_leader:
            self.client.node.spawn(self.campaign(), name="re-campaign")
