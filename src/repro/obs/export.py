"""Trace exporters: Chrome ``trace_event`` JSON and attribution reports.

The Chrome format (load in ``chrome://tracing`` or Perfetto) maps nodes
to processes and traces to threads, so one request's causal chain reads
as a lane per node. All ids, ordering, and timestamps derive from
virtual time and deterministic counters, so two runs with the same seed
export byte-identical JSON.

The attribution report answers the evaluation question "where did the
latency go": for every span the *self time* is its duration minus the
union of its children's intervals (parallel children — e.g. the
replicate fan-out — are not double-counted), aggregated per component.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span

_US = 1e6  # chrome trace timestamps are microseconds


def trace_spans(spans: Iterable[Span], trace_id: int) -> List[Span]:
    """The finished spans of one trace, ordered by (start, span_id)."""
    picked = [s for s in spans if s.trace_id == trace_id and s.finished]
    picked.sort(key=lambda s: (s.start, s.span_id))
    return picked


def slowest_trace(spans: Iterable[Span]) -> Optional[int]:
    """Trace id whose root span has the longest duration, or None."""
    best: Optional[Tuple[float, int]] = None
    for span in spans:
        if span.parent_id is None and span.finished:
            key = (span.duration, -span.trace_id)
            if best is None or key > best:
                best = key
    # Recover the trace id (negated for deterministic ties: lowest wins).
    if best is None:
        return None
    return -best[1]


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def monitor_instants(alerts=None, transitions=None) -> List[dict]:
    """Chrome instant events (``ph: "i"``) for SLO alerts and monitor
    state transitions (repro.monitor).

    ``alerts`` is an iterable of :class:`repro.obs.alerts.Alert` (or
    their dicts); ``transitions`` is ``AlertManager.transitions``. The
    events use global scope (``s: "g"``) so the viewer draws them as
    vertical lines across every lane — pass the result to
    :func:`to_chrome_trace` via ``instants=`` to overlay "the alert
    fired HERE" on the causal span timeline."""
    events: List[dict] = []
    for alert in alerts or []:
        d = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
        events.append(
            {
                "args": {k: d[k] for k in sorted(d) if k != "t"},
                "cat": "alert",
                "name": f"alert:{d['rule']}",
                "ph": "i",
                "pid": 0,
                "s": "g",
                "tid": 0,
                "ts": round(d["t"] * _US, 3),
            }
        )
    for tr in transitions or []:
        events.append(
            {
                "args": {"rule": tr["rule"], "state": tr["state"]},
                "cat": "monitor",
                "name": f"{tr['rule']}:{tr['state']}",
                "ph": "i",
                "pid": 0,
                "s": "g",
                "tid": 0,
                "ts": round(tr["t"] * _US, 3),
            }
        )
    events.sort(key=lambda e: (e["ts"], e["cat"], e["name"]))
    return events


def queue_counters(registry) -> List[dict]:
    """Chrome counter events (``ph: "C"``) from the ``queue.*`` gauges'
    recorded time-series samples (gateway inflight, engine queue depth,
    storage pending writes — see ``registry_from_cluster``).

    The viewer renders each named counter as a stacked area chart in the
    pid-0 lane, so queue growth under overload is visible alongside the
    causal span timeline. Pass the result to :func:`to_chrome_trace` via
    ``counters=``.
    """
    events: List[dict] = []
    for name in registry.names("queue."):
        samples = getattr(registry.get(name), "samples", None)
        if not samples:
            continue
        for t, value in samples:
            events.append(
                {
                    "args": {"value": value},
                    "cat": "queue",
                    "name": name,
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "ts": round(t * _US, 3),
                }
            )
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return events


def tenant_counters(registry) -> List[dict]:
    """Chrome counter events (``ph: "C"``) from the ``tenant.*`` gauges'
    samples (``tenant.<id>.rps``, ``tenant.<id>.shed_rate`` — recorded by
    the :class:`~repro.tenant.TenancyHub` on every labelled arrival/shed).

    Each tenant's arrival and shed rates render as their own counter
    lanes in the pid-0 monitor process, so a noisy neighbor's flood — and
    which tenant absorbed the sheds — is visible alongside the causal
    span timeline. Pass to :func:`to_chrome_trace` via ``counters=``
    (concatenation with :func:`queue_counters` is fine; the viewer keys
    lanes by name).
    """
    events: List[dict] = []
    for name in registry.names("tenant."):
        samples = getattr(registry.get(name), "samples", None)
        if not samples:
            continue
        for t, value in samples:
            events.append(
                {
                    "args": {"value": value},
                    "cat": "tenant",
                    "name": name,
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "ts": round(t * _US, 3),
                }
            )
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return events


def to_chrome_trace(
    spans: Iterable[Span],
    trace_id: Optional[int] = None,
    instants: Optional[List[dict]] = None,
    counters: Optional[List[dict]] = None,
) -> str:
    """Serialize spans as a Chrome ``trace_event`` JSON document.

    ``trace_id`` restricts the export to one trace. Each simulated node
    becomes a "process" (named via metadata events); each trace becomes a
    "thread" within it, so concurrent requests stack as separate lanes.
    ``instants`` adds pre-built instant events (:func:`monitor_instants`)
    and ``counters`` adds counter events (:func:`queue_counters`), both
    under a dedicated "monitor" process lane (pid 0).
    """
    selected = [s for s in spans if s.finished]
    if trace_id is not None:
        selected = [s for s in selected if s.trace_id == trace_id]
    selected.sort(key=lambda s: (s.start, s.span_id))
    node_names = sorted({s.node or "?" for s in selected})
    pids = {name: i + 1 for i, name in enumerate(node_names)}
    events: List[dict] = []
    if instants or counters:
        events.append(
            {
                "args": {"name": "monitor"},
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
            }
        )
        events.extend(instants or [])
        events.extend(counters or [])
    for name in node_names:
        events.append(
            {
                "args": {"name": name},
                "name": "process_name",
                "ph": "M",
                "pid": pids[name],
                "tid": 0,
            }
        )
    for span in selected:
        args: Dict[str, object] = {
            "span_id": span.span_id,
            "status": span.status,
            "trace_id": span.trace_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = _jsonable(span.attrs[key])
        events.append(
            {
                "args": args,
                "cat": span.kind,
                "dur": round(span.duration * _US, 3),
                "name": span.name,
                "ph": "X",
                "pid": pids[span.node or "?"],
                "tid": span.trace_id,
                "ts": round(span.start * _US, 3),
            }
        )
    doc = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    trace_id: Optional[int] = None,
    instants: Optional[List[dict]] = None,
    counters: Optional[List[dict]] = None,
) -> str:
    text = to_chrome_trace(spans, trace_id=trace_id, instants=instants,
                           counters=counters)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
    return text


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Latency attribution
# ----------------------------------------------------------------------
def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    covered += cur_end - cur_start
    return covered


def self_times(spans: Iterable[Span]) -> Dict[int, float]:
    """Per-span self time: duration minus the union of children's
    intervals (clipped to the parent). Keyed by span_id."""
    finished = [s for s in spans if s.finished]
    children: Dict[int, List[Tuple[float, float]]] = {}
    for span in finished:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append((span.start, span.end))
    out: Dict[int, float] = {}
    for span in finished:
        kids = [
            (max(start, span.start), min(end, span.end))
            for start, end in children.get(span.span_id, [])
            if end > span.start and start < span.end
        ]
        out[span.span_id] = max(0.0, span.duration - _interval_union(kids))
    return out


def attribution_report(
    spans: Iterable[Span],
    trace_id: Optional[int] = None,
    title: str = "latency attribution",
) -> str:
    """Plain-text per-component latency attribution.

    With ``trace_id``, reports one request: end-to-end latency, then each
    component's (span name's) self time and share. Without it, aggregates
    over every complete trace (a finished root span).
    """
    all_spans = [s for s in spans if s.finished]
    if trace_id is not None:
        trace_ids = [trace_id]
    else:
        trace_ids = sorted({s.trace_id for s in all_spans if s.parent_id is None})
    lines = [f"=== {title} ==="]
    by_component: Dict[str, List[float]] = {}
    total_e2e = 0.0
    reported = 0
    for tid in trace_ids:
        tspans = trace_spans(all_spans, tid)
        roots = [s for s in tspans if s.parent_id is None]
        if not roots:
            continue
        root = roots[0]
        selfs = self_times(tspans)
        total_e2e += root.duration
        reported += 1
        for span in tspans:
            key = f"{span.name} [{span.node or '?'}]" if trace_id is not None else span.name
            by_component.setdefault(key, []).append(selfs[span.span_id])
        if trace_id is not None:
            lines.append(
                f"trace {tid}: root {root.name!r} status={root.status} "
                f"end-to-end {root.duration * 1e3:.3f} ms, {len(tspans)} spans"
            )
    if not reported:
        lines.append("(no complete traces)")
        return "\n".join(lines)
    if trace_id is None:
        lines.append(
            f"{reported} traces, total end-to-end {total_e2e * 1e3:.3f} ms"
        )
    header = f"{'component':<40} {'count':>5} {'self total':>12} {'share':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    ranked = sorted(
        by_component.items(), key=lambda item: (-sum(item[1]), item[0])
    )
    for name, values in ranked:
        total = sum(values)
        share = total / total_e2e if total_e2e > 0 else 0.0
        lines.append(
            f"{name:<40} {len(values):>5} {total * 1e3:>10.3f}ms {share:>6.1%}"
        )
    lines.append(
        "(shares are self time / end-to-end; concurrent hops can sum past 100%)"
    )
    return "\n".join(lines)
