"""Table 3: LogBook read latencies (§7.1).

Paper (8 function / 8 storage nodes, append-and-read workload):

                local engine hit   local engine miss   remote engine
    median      0.12 ms            0.57 ms             0.79 ms
    99% tail    0.72 ms            1.48 ms             2.90 ms

The claims: the local-hit path never leaves the function node (~0.1 ms
class), a cache miss adds one storage round trip, and a remote engine adds
another network hop on top.
"""

import pytest

from benchmarks._common import emit_artifact, make_cluster, ms, print_table, recorder_metrics, run_once
from repro.workloads.microbench import append_and_read

DURATION = 0.2
CLIENTS = 16


def scenario(**kwargs):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=8, index_engines_per_log=4
    )
    results = append_and_read(cluster, num_clients=CLIENTS, duration=DURATION, **kwargs)
    return results["read"]


def experiment():
    return {
        "local hit": scenario(),
        "local miss": scenario(evict_between_reads=True),
        "remote engine": scenario(force_remote_engine=True),
    }


@pytest.mark.benchmark(group="table3")
def test_table3_read_latencies(benchmark):
    results = run_once(benchmark, experiment)

    rows = [
        ["median", *(ms(results[k].median_latency()) for k in results)],
        ["99% tail", *(ms(results[k].p99_latency()) for k in results)],
    ]
    print_table("Table 3: LogBook read latencies", ["", *results.keys()], rows)

    metrics = {}
    for label, result in results.items():
        metrics.update(recorder_metrics(label.replace(" ", "_"), result.latencies))
    emit_artifact(
        "table3_read_latency",
        metrics,
        title="Table 3: LogBook read latencies",
        config={
            "function_nodes": 8, "storage_nodes": 8, "index_engines_per_log": 4,
            "clients": CLIENTS, "duration_s": DURATION,
        },
    )

    hit = results["local hit"].median_latency()
    miss = results["local miss"].median_latency()
    remote = results["remote engine"].median_latency()

    # Claim 1: strict latency hierarchy.
    assert hit < miss < remote
    # Claim 2: cache hits are in the ~hundred-microsecond class.
    assert hit < 0.4e-3
    # Claim 3: a miss costs several times a hit (paper: ~4.75x).
    assert miss > 2 * hit
    # Claim 4: tails follow the same ordering.
    assert results["local hit"].p99_latency() < results["remote engine"].p99_latency()
