"""Locality-aware and tenant-aware function scheduling.

§4.4: "cloud providers can build simple caches which increase data locality
when scheduling functions on nodes where their data is likely to be
cached" — and §7.5's Table 6 quantifies the cost of ignoring it. This
module implements that scheduler: an invocation bound to a LogBook is
placed on a function node whose engine maintains the index for the book's
physical log (and, secondarily, balances load within that set).

Multi-tenancy (``repro.tenant``) adds two pieces:

- :class:`DeficitRoundRobin` — the weighted-fair queue the gateway's
  dispatch gate drains under saturation: each tenant's queued work is
  served in proportion to its configured weight, with classic DRR
  deficit counters so variable-cost items stay fair.
- :class:`TenantScheduler` — node picking that honors tenant-aware
  placement (:func:`repro.core.placement.assign_tenant_engines`): a
  pinned tenant's invocations land on its dedicated engines, spread
  tenants on their preferred subset, and the tenant is derived from the
  *log space* of the invocation's (already scoped) book id, so the
  scheduler needs no side channel.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.faas.worker import FunctionNode


class LocalityScheduler:
    """Schedules invocations onto index-holding nodes for their LogBook."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._rr = itertools.count()
        self.local_placements = 0
        self.remote_placements = 0

    def __call__(self, fn_name: str, book_id: Optional[int]) -> FunctionNode:
        nodes = [f for f in self.cluster.gateway.function_nodes if f.node.alive]
        if not nodes:
            raise RuntimeError("no live function nodes")
        term = self.cluster.controller.current_term
        if book_id is None or term is None:
            self.remote_placements += 1
            return nodes[next(self._rr) % len(nodes)]
        log_id = term.log_for_book(book_id)
        index_names = set(term.assignment(log_id).index_engines)
        preferred = [f for f in nodes if f.name in index_names]
        if not preferred:
            self.remote_placements += 1
            return nodes[next(self._rr) % len(nodes)]
        # Within the preferred set, pick the least-loaded node (shortest
        # worker queue), breaking ties round-robin.
        self.local_placements += 1
        start = next(self._rr)
        best = min(
            range(len(preferred)),
            key=lambda i: (
                preferred[(start + i) % len(preferred)].queue_depth,
                i,
            ),
        )
        return preferred[(start + best) % len(preferred)]

    @property
    def locality_rate(self) -> float:
        total = self.local_placements + self.remote_placements
        return self.local_placements / total if total else 0.0


def enable_locality_scheduling(cluster) -> LocalityScheduler:
    """Install the locality scheduler on a cluster's gateway."""
    scheduler = LocalityScheduler(cluster)
    cluster.gateway.scheduler = scheduler
    return scheduler


class DeficitRoundRobin:
    """Weighted deficit-round-robin over per-tenant FIFO queues.

    Classic DRR (Shreedhar–Varghese): each backlogged tenant holds a
    deficit counter; a visit tops it up by ``quantum * weight`` and the
    tenant is served while the counter covers its head-of-line cost.
    :meth:`next` returns one item per call (the gateway grants one
    dispatch slot at a time); the rotation state persists across calls,
    so a tenant mid-quantum keeps being served until its deficit runs
    out. A tenant that drains its queue leaves the rotation and forfeits
    its remaining deficit — idle tenants bank nothing.

    Deterministic: pure arithmetic plus FIFO order; no RNG, no clocks.
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._queues: Dict[str, Deque[Tuple[object, float]]] = {}
        self._deficit: Dict[str, float] = {}
        self._weights: Dict[str, float] = {}
        self._active: List[str] = []
        self._cursor = 0
        self._fresh = True
        #: Total cost served per tenant — the fairness measurement the
        #: Jain's-index tests audit.
        self.served: Dict[str, float] = {}

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._weights[tenant] = weight

    def enqueue(self, tenant: str, item, cost: float = 1.0) -> None:
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            self._active.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
        queue.append((item, cost))

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def backlogged(self) -> List[str]:
        return list(self._active)

    def next(self):
        """Serve and return the next item in DRR order; None when empty."""
        while self._active:
            if self._cursor >= len(self._active):
                self._cursor = 0
            tenant = self._active[self._cursor]
            queue = self._queues[tenant]
            if self._fresh:
                self._deficit[tenant] += (
                    self.quantum * self._weights.get(tenant, 1.0)
                )
                self._fresh = False
            cost = queue[0][1]
            if self._deficit[tenant] >= cost:
                item, _ = queue.popleft()
                self._deficit[tenant] -= cost
                self.served[tenant] = self.served.get(tenant, 0.0) + cost
                if not queue:
                    self._remove(tenant)
                return item
            self._cursor = (self._cursor + 1) % len(self._active)
            self._fresh = True
        return None

    def _remove(self, tenant: str) -> None:
        idx = self._active.index(tenant)
        del self._active[idx]
        if idx < self._cursor:
            self._cursor -= 1
        if self._cursor >= len(self._active):
            self._cursor = 0
        self._fresh = True
        self._deficit[tenant] = 0.0


def enable_tenant_scheduling(cluster, spread: Optional[int] = None
                             ) -> "TenantScheduler":
    """Compute tenant-aware placement from the registered tenants' QoS
    (:func:`repro.core.placement.assign_tenant_engines`) and install a
    :class:`TenantScheduler` on the cluster's gateway. Call after
    ``boot()`` (placement keys off the current term) and after the
    tenants are registered."""
    if cluster.tenancy is None:
        raise RuntimeError("call BokiCluster.enable_tenancy() first")
    from repro.core.placement import assign_tenant_engines

    registry = cluster.tenancy.registry
    qos = {t: registry.qos(t) for t in registry.tenants()}
    engines = [f.name for f in cluster.function_nodes]
    term = cluster.controller.current_term
    placement = assign_tenant_engines(
        qos, engines, term_id=term.term_id if term is not None else 0,
        spread=spread,
    )
    scheduler = TenantScheduler(cluster, registry, placement)
    cluster.gateway.scheduler = scheduler
    return scheduler


class TenantScheduler:
    """Tenant-aware node picking over a tenant -> engine-set placement.

    The tenant is recovered from the log space of the invocation's
    (already scoped) book id — no scheduler-protocol change needed. The
    pick is least-loaded within the tenant's placed engine set
    (intersected with the autoscaler's active fleet), falling back to
    the whole live fleet when the placement names no live node or the
    invocation carries no book.
    """

    def __init__(self, cluster, registry, placement: Dict[str, List[str]]):
        self.cluster = cluster
        self.registry = registry
        #: tenant -> preferred engine names, from
        #: :func:`repro.core.placement.assign_tenant_engines`.
        self.placement = placement
        self._rr = itertools.count()
        self.placed = 0
        self.fallbacks = 0

    def _eligible(self) -> List[FunctionNode]:
        gateway = self.cluster.gateway
        alive = [f for f in gateway.function_nodes if f.node.alive]
        if gateway.active_nodes is not None:
            active = [f for f in alive if f.name in gateway.active_nodes]
            alive = active or alive
        return alive

    def __call__(self, fn_name: str, book_id: Optional[int]) -> FunctionNode:
        nodes = self._eligible()
        if not nodes:
            raise RuntimeError("no live function nodes")
        tenant = (self.registry.tenant_of_book(book_id)
                  if book_id is not None else None)
        preferred = nodes
        if tenant is not None:
            placed = self.placement.get(tenant)
            if placed:
                subset = [f for f in nodes if f.name in placed]
                if subset:
                    preferred = subset
        if preferred is nodes:
            self.fallbacks += 1
        else:
            self.placed += 1
        start = next(self._rr)
        best = min(
            range(len(preferred)),
            key=lambda i: (preferred[(start + i) % len(preferred)].queue_depth, i),
        )
        return preferred[(start + best) % len(preferred)]
