"""Measurement helpers: latency recorders, counters, and time series.

Every experiment in the benchmark harness reports through these classes so
that percentile math is consistent across tables and figures.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def percentile_sorted(ordered: List[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} out of range")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def percentile(samples: List[float], p: float) -> float:
    """Linear-interpolated percentile of ``samples`` (p in [0, 100])."""
    return percentile_sorted(sorted(samples), p)


class LatencyRecorder:
    """Collects latency samples and reports summary statistics.

    The sorted view is computed lazily and cached (invalidated by
    :meth:`record`), so a full :meth:`summary` sorts the samples once
    instead of once per statistic.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []
        self._ordered: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.samples.append(latency)
        self._ordered = None

    def sorted_samples(self) -> List[float]:
        """The samples in ascending order (cached; do not mutate)."""
        if self._ordered is None or len(self._ordered) != len(self.samples):
            self._ordered = sorted(self.samples)
        return self._ordered

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        return percentile_sorted(self.sorted_samples(), p)

    def median(self) -> float:
        return self.percentile(50)

    def p95(self) -> float:
        return self.percentile(95)

    def p99(self) -> float:
        return self.percentile(99)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    def max(self) -> float:
        ordered = self.sorted_samples()
        if not ordered:
            raise ValueError("no samples")
        return ordered[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "median": self.median(),
            "p99": self.p99(),
            "mean": self.mean(),
            "max": self.max(),
        }

    def summary_dict(self) -> Dict[str, float]:
        """JSON-ready percentile summary under stable ``pNN`` keys, so
        benchmarks stop hand-rolling percentile dicts."""
        ordered = self.sorted_samples()
        if not ordered:
            raise ValueError("no samples")
        return {
            "count": float(len(ordered)),
            "mean": self.mean(),
            "min": ordered[0],
            "p50": percentile_sorted(ordered, 50),
            "p95": percentile_sorted(ordered, 95),
            "p99": percentile_sorted(ordered, 99),
            "p999": percentile_sorted(ordered, 99.9),
            "max": ordered[-1],
        }


class Counter:
    """Counts completions and derives throughput over an interval."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0
        self._start: Optional[float] = None
        self._stop: Optional[float] = None

    def start(self, now: float) -> None:
        self._start = now

    def stop(self, now: float) -> None:
        self._stop = now

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def throughput(self) -> float:
        """Completions per second of virtual time over [start, stop]."""
        if self._start is None or self._stop is None:
            raise ValueError("counter window not closed")
        duration = self._stop - self._start
        if duration <= 0:
            raise ValueError("empty measurement window")
        return self.value / duration


@dataclass
class TimeSeries:
    """Timestamped samples, used for reconfiguration timelines (Fig. 10/14)."""

    name: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Points with start <= time < end (points must be in time order).

        Bisects over ``self.points`` directly — a 1-tuple ``(t,)`` sorts
        strictly before any ``(t, value)``, so no per-call times list is
        built (callers like ``bucket_percentile`` invoke this per bucket).
        """
        lo = bisect.bisect_left(self.points, (start,))
        hi = bisect.bisect_left(self.points, (end,))
        return self.points[lo:hi]

    def bucket_percentile(
        self, start: float, end: float, width: float, p: float
    ) -> List[Tuple[float, Optional[float]]]:
        """Percentile of values per time bucket; None for empty buckets."""
        if width <= 0:
            raise ValueError("bucket width must be positive")
        out: List[Tuple[float, Optional[float]]] = []
        t = start
        while t < end:
            values = [v for _, v in self.window(t, min(t + width, end))]
            out.append((t, percentile(values, p) if values else None))
            t += width
        return out
