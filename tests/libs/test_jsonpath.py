"""Unit tests for BokiStore's JSON path operations."""

import pytest
from hypothesis import given, strategies as st

from repro.libs.bokistore.jsonpath import (
    PathError,
    apply_op,
    apply_ops,
    delete_path,
    get_path,
    inc_path,
    make_array_path,
    push_array_path,
    set_path,
)


class TestPaths:
    def test_set_and_get_nested(self):
        obj = {}
        set_path(obj, "a.b.c", 42)
        assert obj == {"a": {"b": {"c": 42}}}
        assert get_path(obj, "a.b.c") == 42

    def test_get_missing_returns_default(self):
        assert get_path({}, "x.y", "dflt") == "dflt"

    def test_get_through_non_dict_returns_default(self):
        assert get_path({"a": 5}, "a.b") is None

    def test_set_overwrites(self):
        obj = {"a": 1}
        set_path(obj, "a", 2)
        assert obj == {"a": 2}

    def test_set_through_scalar_raises(self):
        obj = {"a": 5}
        with pytest.raises(PathError):
            set_path(obj, "a.b", 1)

    def test_delete(self):
        obj = {"a": {"b": 1, "c": 2}}
        delete_path(obj, "a.b")
        assert obj == {"a": {"c": 2}}

    def test_delete_missing_is_noop(self):
        obj = {"a": 1}
        delete_path(obj, "x.y")
        assert obj == {"a": 1}

    def test_inc(self):
        obj = {"n": 10}
        inc_path(obj, "n", -3)
        assert obj["n"] == 7

    def test_inc_creates_from_zero(self):
        obj = {}
        inc_path(obj, "n", 5)
        assert obj["n"] == 5

    def test_inc_non_number_raises(self):
        with pytest.raises(PathError):
            inc_path({"n": "str"}, "n", 1)

    def test_arrays(self):
        obj = {}
        make_array_path(obj, "a.d")
        push_array_path(obj, "a.d", 1)
        push_array_path(obj, "a.d", 2)
        assert obj == {"a": {"d": [1, 2]}}

    def test_push_creates_array(self):
        obj = {}
        push_array_path(obj, "xs", "v")
        assert obj == {"xs": ["v"]}

    def test_push_on_scalar_raises(self):
        with pytest.raises(PathError):
            push_array_path({"xs": 5}, "xs", 1)

    def test_empty_path_raises(self):
        with pytest.raises(PathError):
            get_path({}, "")


class TestOps:
    def test_figure6c_sequence(self):
        """The exact sequence from Figure 6c."""
        obj = {"a": {}, "b": "foo"}
        apply_op(obj, {"op": "set", "path": "a.c", "value": "bar"})
        assert obj == {"a": {"c": "bar"}, "b": "foo"}
        apply_op(obj, {"op": "make_array", "path": "a.d"})
        apply_op(obj, {"op": "push", "path": "a.d", "value": 1})
        assert obj == {"a": {"c": "bar", "d": [1]}, "b": "foo"}

    def test_apply_ops_on_none_creates(self):
        obj = apply_ops(None, [{"op": "set", "path": "k", "value": 1}])
        assert obj == {"k": 1}

    def test_replace(self):
        obj = {"old": 1}
        apply_op(obj, {"op": "replace", "value": {"new": 2}})
        assert obj == {"new": 2}

    def test_unknown_op_raises(self):
        with pytest.raises(PathError):
            apply_op({}, {"op": "explode"})

    def test_ops_deep_copy_values(self):
        """Logged values must not be aliased into the object state."""
        value = {"inner": [1]}
        obj = apply_ops(None, [{"op": "set", "path": "k", "value": value}])
        value["inner"].append(2)
        assert obj["k"]["inner"] == [1]

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "a.c", "b.d"]), st.integers()),
            max_size=20,
        )
    )
    def test_replay_determinism_property(self, writes):
        """Applying the same op list twice yields identical objects —
        the invariant log replay depends on."""
        ops = [{"op": "set", "path": p, "value": v} for p, v in writes]
        try:
            first = apply_ops(None, list(ops))
            second = apply_ops(None, list(ops))
        except PathError:
            return  # conflicting path shapes: rejection is also deterministic
        assert first == second
