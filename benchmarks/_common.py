"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure from the paper's evaluation
(§7) at laptop scale: node counts, client counts, and durations are scaled
down (the exact factors are recorded in EXPERIMENTS.md), and all times are
*virtual* (simulated) seconds, so results are deterministic for a given
seed and independent of host speed. Absolute numbers therefore differ from
the paper; the assertions check the paper's qualitative claims — who wins,
by roughly what factor, where trends bend.

Run with: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.dynamodb import DynamoDBService
from repro.core import BokiCluster, BokiConfig


def print_table(title: str, headers: Sequence[str], rows: List[Sequence[Any]]) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def kops(per_second: float) -> str:
    return f"{per_second / 1e3:.1f}K"


def make_cluster(
    num_function_nodes: int = 4,
    num_storage_nodes: int = 4,
    num_sequencer_nodes: int = 3,
    num_logs: int = 1,
    index_engines_per_log: Optional[int] = None,
    config: Optional[BokiConfig] = None,
    seed: int = 0,
    workers_per_node: int = 64,
    with_dynamodb: bool = False,
) -> BokiCluster:
    cluster = BokiCluster(
        num_function_nodes=num_function_nodes,
        num_storage_nodes=num_storage_nodes,
        num_sequencer_nodes=num_sequencer_nodes,
        num_logs=num_logs,
        index_engines_per_log=index_engines_per_log,
        config=config,
        seed=seed,
        workers_per_node=workers_per_node,
    )
    if with_dynamodb:
        DynamoDBService(cluster.env, cluster.net, cluster.streams)
    cluster.boot()
    return cluster


def run_once(benchmark, fn):
    """Wrap a whole experiment as a single pytest-benchmark round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
