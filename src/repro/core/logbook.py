"""The LogBook API (Figure 1): the user-facing shared log handle.

Every function invocation is associated with a LogBook. The handle wraps
the function node's LogBook engine, adding the container<->engine IPC hop
(Nightcore's low-latency message channels) and the per-function metalog
position that makes monotonic reads and read-your-writes hold (§3, §4.4).

All methods are generator functions; consume with ``yield from`` inside a
simulation process::

    seqnum = yield from book.append({"op": "push"}, tags=[7])
    record = yield from book.read_next(tag=7, min_seqnum=0)

Multi-tenancy (``repro.tenant``): a handle created for a tenant carries a
``tag_scope`` — explicit tags are namespaced into the tenant's log space
on the way out (append/read/trim) and stripped on returned records, so
user code keeps raw tags while the index sees tenant-private rows. The
book id arrives *already* scoped (the registry scopes it when the handle
or invocation is created). No scope (the default tenant) is the identity
fast path: zero extra work, byte-identical to historical runs.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, Optional

from repro.core.engine import LogBookEngine
from repro.core.index import ALL_TAG
from repro.core.types import (
    BAGGAGE_POSITIONS,
    MAX_SEQNUM,
    LogRecord,
    MetalogPosition,
    merge_positions,
)


class LogBookError(Exception):
    """Base class for LogBook API errors."""



class LogBook:
    """A handle on one LogBook, bound to a position holder.

    When created from a function context, positions live in the context's
    baggage so child invocations inherit them (§4.4); standalone handles
    (microbenchmarks, tests) keep positions in a private dict.
    """

    def __init__(
        self,
        engine: LogBookEngine,
        book_id: int,
        positions: Optional[Dict[int, MetalogPosition]] = None,
        tag_scope=None,
    ):
        self.engine = engine
        self.env = engine.env
        self.book_id = book_id
        self._positions: Dict[int, MetalogPosition] = positions if positions is not None else {}
        #: Tenant tag hook (repro.tenant.TagScope) or None (identity).
        self.tag_scope = tag_scope

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_context(cls, engine: LogBookEngine, ctx, tag_scope=None) -> "LogBook":
        """Bind to a function context; positions travel in baggage."""
        positions = ctx.baggage.setdefault(BAGGAGE_POSITIONS, {})
        return cls(engine, ctx.book_id, positions, tag_scope=tag_scope)

    @classmethod
    def standalone(cls, engine: LogBookEngine, book_id: int,
                   tag_scope=None) -> "LogBook":
        return cls(engine, book_id, tag_scope=tag_scope)

    # ------------------------------------------------------------------
    # Tenant tag scoping (identity when tag_scope is None)
    # ------------------------------------------------------------------
    def _scope(self, tag: int) -> int:
        return tag if self.tag_scope is None else self.tag_scope.scope(tag)

    def _unscope_all(self, tags) -> tuple:
        if self.tag_scope is None:
            return tuple(tags)
        return tuple(self.tag_scope.unscope(t) for t in tags)

    # ------------------------------------------------------------------
    # Position bookkeeping
    # ------------------------------------------------------------------
    def _position(self, log_id: int) -> MetalogPosition:
        return self._positions.get(log_id, MetalogPosition.zero())

    def _advance(self, log_id: int, position: MetalogPosition) -> None:
        if position > self._position(log_id):
            self._positions[log_id] = position

    def _log_id(self) -> int:
        term_config = self.engine.term_config
        assert term_config is not None
        return term_config.log_for_book(self.book_id)

    def _ipc(self) -> Generator:
        yield self.env.timeout(self.engine.config.ipc_delay)

    # ------------------------------------------------------------------
    # API (Figure 1)
    # ------------------------------------------------------------------
    def append(self, data: Any, tags: Iterable[int] = ()) -> Generator:
        """logAppend: returns the record's seqnum."""
        tags = tuple(tags)
        if ALL_TAG in tags:
            raise LogBookError("tag 0 is reserved (the implicit all-records tag)")
        tags = tuple(self._scope(t) for t in tags)
        yield from self._ipc()
        seqnum, position = yield from self.engine.append(self.book_id, tags, data)
        self._advance(self.engine.term_config.log_for_book(self.book_id), position)
        yield from self._ipc()
        return seqnum

    def read_next(self, tag: int = ALL_TAG, min_seqnum: int = 0) -> Generator:
        """logReadNext: first record with seqnum >= min_seqnum carrying
        ``tag``, or None."""
        return (yield from self._read("next", tag, min_seqnum))

    def read_prev(self, tag: int = ALL_TAG, max_seqnum: int = MAX_SEQNUM) -> Generator:
        """logReadPrev: last record with seqnum <= max_seqnum carrying
        ``tag``, or None."""
        return (yield from self._read("prev", tag, max_seqnum))

    def check_tail(self, tag: int = ALL_TAG) -> Generator:
        """logCheckTail: alias of logReadPrev(MAX_SEQNUM, tag)."""
        return (yield from self._read("prev", tag, MAX_SEQNUM))

    def _read(self, direction: str, tag: int, bound: int) -> Generator:
        yield from self._ipc()
        reply, updated = yield from self.engine.read(
            self.book_id, self._scope(tag), direction, bound, dict(self._positions)
        )
        for log_id, position in updated.items():
            self._advance(log_id, position)
        yield from self._ipc()
        if reply is None:
            return None
        return LogRecord(
            seqnum=reply["seqnum"],
            tags=self._unscope_all(reply["tags"]),
            data=reply["data"],
            auxdata=reply.get("auxdata"),
            book_id=reply["book_id"],
        )

    def trim(self, until_seqnum: int, tag: int = ALL_TAG) -> Generator:
        """logTrim: delete records with seqnum <= until_seqnum (for ``tag``,
        or the whole book when tag is 0)."""
        yield from self._ipc()
        yield from self.engine.trim(self.book_id, self._scope(tag), until_seqnum)
        yield from self._ipc()

    def set_auxdata(self, seqnum: int, auxdata: Any) -> Generator:
        """logSetAuxData: best-effort per-record cache storage (§3)."""
        yield from self._ipc()
        yield from self.engine.set_auxdata(self.book_id, seqnum, auxdata)
        yield from self._ipc()

    def read_range(
        self, tag: int = ALL_TAG, min_seqnum: int = 0, max_seqnum: int = MAX_SEQNUM
    ) -> Generator:
        """Batched range read: every record with the tag in
        [min_seqnum, max_seqnum], in seqnum order, in one engine call.
        Amortizes the IPC and index overheads over the whole range —
        the support libraries use this for log replay."""
        yield from self._ipc()
        replies, updated = yield from self.engine.read_range(
            self.book_id, self._scope(tag), min_seqnum, max_seqnum,
            dict(self._positions)
        )
        for log_id, position in updated.items():
            self._advance(log_id, position)
        yield from self._ipc()
        return [
            LogRecord(
                seqnum=reply["seqnum"],
                tags=self._unscope_all(reply["tags"]),
                data=reply["data"],
                auxdata=reply.get("auxdata"),
                book_id=reply["book_id"],
            )
            for reply in replies
        ]

    # ------------------------------------------------------------------
    # Convenience iteration (used by the support libraries)
    # ------------------------------------------------------------------
    def iter_records(
        self, tag: int = ALL_TAG, min_seqnum: int = 0, max_seqnum: int = MAX_SEQNUM
    ) -> Generator:
        """Collect records with the tag in [min_seqnum, max_seqnum], in
        seqnum order (the loop the support-library pseudocode calls
        ``logIterRecords``); served by the batched range read."""
        return (yield from self.read_range(tag, min_seqnum, max_seqnum))
