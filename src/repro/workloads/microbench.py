"""LogBook microbenchmarks (§7.1, §7.5).

- append-only: each client loops appending 1 KB records to a LogBook
  (Table 2a/2b throughput scaling, Table 8, Figure 10/14 timelines);
- append-and-read: each client appends then reads the record back four
  times (Table 3 read latencies).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.core.cluster import BokiCluster
from repro.core.logbook import LogBook
from repro.sim.metrics import LatencyRecorder, TimeSeries
from repro.sim.randvar import weighted_choice
from repro.workloads.harness import RunResult, run_closed_loop

RECORD_1KB = "x" * 1024


def append_only(
    cluster: BokiCluster,
    num_clients: int,
    duration: float,
    book_ids: Optional[List[int]] = None,
    book_weights: Optional[List[float]] = None,
    logbook_factory: Optional[Callable[[int, int], LogBook]] = None,
    payload: str = RECORD_1KB,
    warmup: float = 0.05,
) -> RunResult:
    """Closed-loop append throughput.

    ``book_ids``/``book_weights`` spread appends over many LogBooks
    (Table 2b uniform, Table 8 Zipf); default is a single book. A custom
    ``logbook_factory(client_index, book_id)`` swaps the placement policy
    (Table 8's fixed sharding)."""
    book_ids = book_ids or [1]
    rng = cluster.streams.stream("append-only-books")
    engines = list(cluster.engines.values())

    def make_op(client: int) -> Callable[[], Generator]:
        engine = engines[client % len(engines)]
        books: Dict[int, LogBook] = {}

        def one_append() -> Generator:
            if book_weights is not None:
                book_id = book_ids[weighted_choice(rng, book_weights)]
            elif len(book_ids) > 1:
                book_id = book_ids[rng.randrange(len(book_ids))]
            else:
                book_id = book_ids[0]
            book = books.get(book_id)
            if book is None:
                if logbook_factory is not None:
                    book = logbook_factory(client, book_id)
                else:
                    book = cluster.logbook(book_id, engine=engine)
                books[book_id] = book
            yield from book.append(payload)

        return one_append

    return run_closed_loop(
        cluster.env, make_op, num_clients, duration, warmup=warmup, obs=cluster.obs
    )


def append_and_read(
    cluster: BokiCluster,
    num_clients: int,
    duration: float,
    reads_per_append: int = 4,
    force_remote_engine: bool = False,
    evict_between_reads: bool = False,
    warmup: float = 0.05,
) -> Dict[str, RunResult]:
    """The Table 3 workload: append one record, read it back N times.

    Returns separate recorders for append and read latencies. With
    ``force_remote_engine`` the reading LogBook is bound to an engine that
    does *not* index the log; with ``evict_between_reads`` the record is
    dropped from the local cache before each read (the cache-miss row)."""
    engines = list(cluster.engines.values())
    read_latencies = LatencyRecorder("reads")
    append_latencies = LatencyRecorder("appends")
    env = cluster.env
    state = {"reads": 0, "appends": 0}
    t_start = env.now + warmup
    t_end = t_start + duration

    def make_op(client: int) -> Callable[[], Generator]:
        log_id = cluster.term.log_for_book(1)
        if force_remote_engine:
            pool = [e for e in engines if not e.indexes(log_id)]
            if not pool:
                raise ValueError("no non-indexing engine; lower index_engines_per_log")
        else:
            # The local-read rows of Table 3 run functions on nodes whose
            # engine indexes the log (the scheduler's locality optimization).
            pool = [e for e in engines if e.indexes(log_id)] or engines
        engine = pool[client % len(pool)]
        book = cluster.logbook(1, engine=engine)
        tag = 100 + client

        def one_cycle() -> Generator:
            started = env.now
            seqnum = yield from book.append(RECORD_1KB, tags=[tag])
            if t_start <= env.now <= t_end:
                append_latencies.record(env.now - started)
                state["appends"] += 1
            for _ in range(reads_per_append):
                if evict_between_reads:
                    for e in engines:
                        e.cache.drop(seqnum)
                r_started = env.now
                yield from book.read_next(tag=tag, min_seqnum=seqnum)
                if t_start <= env.now <= t_end:
                    read_latencies.record(env.now - r_started)
                    state["reads"] += 1

        return one_cycle

    result = run_closed_loop(
        env, make_op, num_clients, duration, warmup=warmup, obs=cluster.obs
    )
    return {
        "cycle": result,
        "append": RunResult(state["appends"], duration, append_latencies),
        "read": RunResult(state["reads"], duration, read_latencies),
    }


def append_latency_timeline(
    cluster: BokiCluster,
    num_clients: int,
    duration: float,
    read_ratio: int = 0,
) -> Dict[str, TimeSeries]:
    """Run appends (optionally mixed with check-tail reads at
    1:``read_ratio``) and record per-op (completion_time, latency) series —
    the raw data behind Figures 10 and 14."""
    env = cluster.env
    appends = TimeSeries("append-latency")
    reads = TimeSeries("read-latency")
    engines = list(cluster.engines.values())
    stop = env.timeout(duration)

    def client(index: int) -> Generator:
        from repro.sim.kernel import Interrupt

        book = cluster.logbook(1, engine=engines[index % len(engines)])
        i = 0
        try:
            while env.now < duration:
                started = env.now
                if read_ratio and i % (read_ratio + 1) != 0:
                    yield from book.check_tail()
                    reads.add(env.now, env.now - started)
                else:
                    yield from book.append(RECORD_1KB)
                    appends.add(env.now, env.now - started)
                i += 1
        except Interrupt:
            return

    procs = [env.process(client(i), name=f"tl-client-{i}") for i in range(num_clients)]
    env.run_until(stop, limit=duration * 50 + 120.0)
    for proc in procs:
        if proc.is_alive:
            proc.interrupt("done")
    return {"append": appends, "read": reads}
