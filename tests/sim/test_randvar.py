"""Unit tests for seeded random streams and distributions."""

import pytest

from repro.sim.randvar import RandomStreams, lognormal_from_median, weighted_choice, zipf_weights


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(seed=7).stream("x")
        b = RandomStreams(seed=7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("s") is streams.stream("s")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(seed=9)
        first = s1.stream("main")
        draws_before = [first.random() for _ in range(3)]

        s2 = RandomStreams(seed=9)
        s2.stream("other")  # new consumer
        main = s2.stream("main")
        draws_after = [main.random() for _ in range(3)]
        assert draws_before == draws_after

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=4).fork("child").stream("x").random()
        b = RandomStreams(seed=4).fork("child").stream("x").random()
        assert a == b


class TestZipf:
    def test_normalized(self):
        w = zipf_weights(100, 1.5)
        assert sum(w) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 2.0)
        assert all(w[i] >= w[i + 1] for i in range(len(w) - 1))

    def test_zero_exponent_uniform(self):
        w = zipf_weights(10, 0.0)
        assert all(x == pytest.approx(0.1) for x in w)

    def test_high_exponent_concentrates(self):
        w = zipf_weights(128, 5.0)
        assert w[0] > 0.95

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = RandomStreams(seed=2).stream("wc")
        counts = [0, 0]
        for _ in range(10000):
            counts[weighted_choice(rng, [0.9, 0.1])] += 1
        assert counts[0] > 8500

    def test_single_item(self):
        rng = RandomStreams(seed=2).stream("wc1")
        assert weighted_choice(rng, [1.0]) == 0


class TestLognormal:
    def test_median_is_respected(self):
        rng = RandomStreams(seed=5).stream("ln")
        samples = sorted(lognormal_from_median(rng, 0.01, 0.3) for _ in range(20001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(0.01, rel=0.05)

    def test_positive(self):
        rng = RandomStreams(seed=5).stream("ln2")
        assert all(lognormal_from_median(rng, 1.0, 1.0) > 0 for _ in range(100))

    def test_invalid_median(self):
        rng = RandomStreams(seed=5).stream("ln3")
        with pytest.raises(ValueError):
            lognormal_from_median(rng, 0.0, 1.0)
