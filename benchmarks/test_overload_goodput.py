"""Overload benchmark: goodput, shed rate, and accepted-latency p99 as
offered load sweeps from half to 4x the cluster's saturation point.

The graceful-degradation claim of ``repro.admission`` (ISSUE 9) as a
curve rather than a single scenario: with admission control enabled, a
fixed 4-worker cluster is offered the same open-loop ``bulk-op`` traffic
at 0.5x, 1x, 2x and 4x its analytic saturation throughput. A shedding
system should show the textbook profile — goodput rises with offered
load, plateaus at (a constant fraction of) capacity, and *stays* there
as overload deepens, while the latency of accepted requests remains
bounded and the shed rate absorbs the excess. Without admission the same
sweep collapses past saturation (see the ``retry-storm-metastable``
chaos pair); here we pin the curve the admission layer actually
delivers, as a committed perf baseline.
"""

import pytest

from benchmarks._common import (
    adopt_cluster,
    emit_artifact,
    info,
    lat_ms,
    metric,
    ms,
    print_table,
    run_once,
)
from repro.chaos.history import History
from repro.chaos.scenarios import _drive_all, _overload_clients
from repro.core import BokiCluster

SEED = 0
WORKERS = 4
#: Virtual seconds of one bulk-op on a worker slot (10 ms handler +
#: dispatch overhead) — the same constant the overload chaos scenarios
#: use to compute analytic saturation.
BULK_COST = 0.0105
SATURATION = WORKERS / BULK_COST  # ~381 op/s for one 4-worker engine
#: Offered load as multiples of saturation: under, at, and beyond.
LOAD_FACTORS = (0.5, 1.0, 2.0, 4.0)
DURATION = 1.5
WARMUP = 0.4  # limiter convergence; measured window is [WARMUP, DURATION)
ATTEMPT_TIMEOUT = 0.25


def _label(factor: float) -> str:
    return f"x{factor:g}"


def _run_at(factor: float) -> dict:
    """One fresh same-seed cluster offered ``factor``x saturation."""
    rate = factor * SATURATION
    cluster = BokiCluster(
        num_function_nodes=1, num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=WORKERS, seed=SEED,
    )
    cluster.enable_admission()
    cluster.boot()
    adopt_cluster(cluster)
    env = cluster.env

    def bulk(ctx, arg):
        yield env.timeout(0.01)
        return arg

    cluster.register_function("bulk-op", bulk)
    history = History(env)
    gen, ops = _overload_clients(cluster, history, rate, DURATION,
                                 timeout=ATTEMPT_TIMEOUT)
    _drive_all(cluster, [gen], limit=DURATION + 2.0)
    _drive_all(cluster, ops, limit=DURATION + 2.0)

    offered = completed = 0
    latencies = []
    for op in history.ops:
        if not (WARMUP <= op.t_invoke < DURATION):
            continue
        offered += 1
        if op.status == "ok":
            completed += 1
            latencies.append(op.t_return - op.t_invoke)
    span = DURATION - WARMUP
    latencies.sort()
    rank = min(len(latencies) - 1, max(0, int(0.99 * len(latencies) + 0.5) - 1))
    shed = cluster.admission.total_shed()
    launched = len(ops)
    return {
        "offered_rate": rate,
        "offered": offered,
        "goodput": completed / span,
        "accepted_p99": latencies[rank] if latencies else None,
        "shed": shed,
        "shed_rate": shed / launched,
        "limit": cluster.admission.limiter.limit,
        "inflight_peak": cluster.gateway.inflight_peak,
    }


def experiment():
    return {_label(f): _run_at(f) for f in LOAD_FACTORS}


@pytest.mark.admission
@pytest.mark.benchmark(group="overload")
def test_overload_goodput_curve(benchmark):
    runs = run_once(benchmark, experiment)

    print_table(
        "Overload: goodput vs offered load (admission on)",
        ["offered", "rate/s", "goodput/s", "frac of sat", "accepted p99",
         "shed rate", "limit", "inflight peak"],
        [[
            name,
            f"{run['offered_rate']:.0f}",
            f"{run['goodput']:.1f}",
            f"{run['goodput'] / SATURATION:.2f}",
            ms(run["accepted_p99"]) if run["accepted_p99"] else "-",
            f"{run['shed_rate']:.3f}",
            run["limit"],
            run["inflight_peak"],
        ] for name, run in runs.items()],
    )

    metrics = {"saturation.goodput_per_s": info(SATURATION)}
    for name, run in runs.items():
        metrics[f"{name}.goodput_per_s"] = metric(
            run["goodput"], unit="op/s", better="higher")
        metrics[f"{name}.accepted_p99_ms"] = lat_ms(run["accepted_p99"])
        metrics[f"{name}.shed_rate"] = metric(
            run["shed_rate"], unit="frac", better="lower")
        metrics[f"{name}.offered"] = info(run["offered"])
    emit_artifact(
        "overload_goodput",
        metrics,
        title="Overload: goodput/shed/p99 vs offered load with admission control",
        config={
            "workers": WORKERS, "bulk_cost_s": BULK_COST,
            "saturation_per_s": SATURATION, "load_factors": list(LOAD_FACTORS),
            "duration_s": DURATION, "warmup_s": WARMUP,
            "attempt_timeout_s": ATTEMPT_TIMEOUT,
        },
        seed=SEED,
    )

    under, at, over, deep = (runs[_label(f)] for f in LOAD_FACTORS)
    # Transparency: below capacity admission sheds nothing and adds no
    # latency — the under-capacity run is untouched by the layer.
    assert under["shed"] == 0
    assert under["goodput"] == pytest.approx(under["offered"] / (DURATION - WARMUP))
    # The degradation contract at and beyond saturation: goodput holds at
    # >= 70% of the analytic ceiling however deep the overload...
    for run in (at, over, deep):
        assert run["goodput"] >= 0.7 * SATURATION
    # ...and does not collapse as load quadruples past capacity.
    assert deep["goodput"] >= 0.9 * over["goodput"]
    # Accepted requests stay fast: shedding, not queueing.
    for run in runs.values():
        assert run["accepted_p99"] is not None
        assert run["accepted_p99"] <= ATTEMPT_TIMEOUT
    # The excess is absorbed by sheds, monotonically in offered load.
    assert deep["shed_rate"] > over["shed_rate"] > 0.0
