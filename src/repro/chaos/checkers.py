"""Offline guarantee checkers over recorded histories.

Each checker returns a :class:`CheckResult` with a deterministic,
JSON-serializable list of violations (empty = the guarantee held).

Checkers are conservative in the Jepsen sense: operations that never
completed (client crashed, RPC timed out) are *indeterminate* — they may
or may not have taken effect — and the checkers accept any outcome
consistent with that ambiguity. Only behavior that no interleaving of
indeterminate operations can explain is flagged.
"""

from __future__ import annotations

import json
from collections import Counter
from math import inf
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.chaos.history import History, Op


class CheckResult:
    """Outcome of one checker."""

    def __init__(self, name: str, violations: List[str], checked: int):
        self.name = name
        self.violations = violations
        self.checked = checked  # how many ops / entries were examined

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "checked": self.checked,
            "violations": list(self.violations),
        }


def _value_key(value: Any) -> str:
    """Canonical hashable form of an op value (dicts are unhashable)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# BokiStore: single-key linearizability (Wing & Gong)
# ----------------------------------------------------------------------
def check_store_linearizability(history: History) -> CheckResult:
    """WGL-style linearizability of ``store.put``/``store.get`` per key.

    Each key is an independent register holding the whole object dict.
    Reads that did not complete are dropped (no side effects); writes that
    did not complete are indeterminate — they may linearize at any point
    after their invocation, or never.
    """
    store_ops = [op for op in history.ops if op.kind in ("store.put", "store.get")]
    violations: List[str] = []
    keys = sorted({op.key for op in store_ops})
    for key in keys:
        ops = []
        for op in store_ops:
            if op.key != key:
                continue
            if op.kind == "store.get":
                if op.status != "ok":
                    continue  # incomplete read: no effects, uncheckable
                ops.append({
                    "op_id": op.op_id, "kind": "r",
                    "val": _value_key(op.result),
                    "t_inv": op.t_invoke, "t_ret": op.t_return,
                })
            else:
                ops.append({
                    "op_id": op.op_id, "kind": "w",
                    "val": _value_key(op.value),
                    "t_inv": op.t_invoke,
                    # fail/invoked writes are indeterminate: unconstrained
                    # return time, and they may never take effect.
                    "t_ret": op.t_return if op.status == "ok" else inf,
                })
        if not _register_linearizable(ops):
            violations.append(
                f"key {key!r}: history of {len(ops)} ops is not linearizable"
            )
    return CheckResult("store-linearizability", violations, len(store_ops))


def _register_linearizable(ops: List[dict]) -> bool:
    """Wing & Gong search over one register's operations.

    State = (frozenset of remaining op ids, register value). An operation
    may be linearized first iff no other remaining operation returned
    before it was invoked. Memoized, candidates visited in op-id order for
    determinism. Initial register value is JSON null (object absent).
    """
    if not ops:
        return True
    by_id = {o["op_id"]: o for o in ops}
    initial = (frozenset(by_id), "null")
    visited = set()
    stack = [initial]
    while stack:
        remaining, value = stack.pop()
        if all(by_id[i]["t_ret"] == inf for i in remaining):
            # Only indeterminate writes left: legal for none of them to
            # have ever taken effect.
            return True
        if (remaining, value) in visited:
            continue
        visited.add((remaining, value))
        min_ret = min(by_id[i]["t_ret"] for i in remaining)
        for op_id in sorted(remaining):
            op = by_id[op_id]
            if op["t_inv"] > min_ret:
                continue  # some other op completed strictly before this began
            if op["kind"] == "r":
                if op["val"] != value:
                    continue
                stack.append((remaining - {op_id}, value))
            else:
                stack.append((remaining - {op_id}, op["val"]))
    return False


# ----------------------------------------------------------------------
# BokiFlow: exactly-once effect application
# ----------------------------------------------------------------------
def check_exactly_once(
    effect_log: Iterable[Tuple[Any, str, Any]],
    expected_effects: Iterable[Any],
) -> CheckResult:
    """No duplicated, no lost effects.

    ``effect_log`` is the database's applied-effect journal (one entry per
    *applied* update carrying an effect id); ``expected_effects`` are the
    effect ids that a completed workflow must have applied. A logical
    effect applied more than once is a duplication (the unsafe baseline's
    failure mode); an expected effect never applied is a lost write.
    """
    entries = list(effect_log)
    counts = Counter(_value_key(list(e[0]) if isinstance(e[0], tuple) else e[0])
                     for e in entries)
    violations: List[str] = []
    for eid_key in sorted(counts):
        if counts[eid_key] > 1:
            violations.append(
                f"effect {eid_key} applied {counts[eid_key]} times (duplicate)"
            )
    for eid in expected_effects:
        eid_key = _value_key(list(eid) if isinstance(eid, tuple) else eid)
        if counts.get(eid_key, 0) == 0:
            violations.append(f"effect {eid_key} never applied (lost write)")
    return CheckResult("exactly-once-effects", violations, len(entries))


# ----------------------------------------------------------------------
# BokiQueue: no-loss / no-duplicate delivery
# ----------------------------------------------------------------------
def check_queue_delivery(history: History, drained: bool = True) -> CheckResult:
    """Every acknowledged push is delivered exactly once.

    Requires pushed values to be unique (scenarios use sequence-numbered
    payloads). A value popped twice is a duplicate; a value popped but
    never pushed is a phantom; with ``drained=True`` (the scenario popped
    until the queue stayed empty) an acknowledged push never popped is a
    lost message. Unacknowledged pushes may legally surface zero or one
    time.
    """
    pushes = history.of_kind("queue.push")
    pops = [op for op in history.of_kind("queue.pop")
            if op.status == "ok" and op.result is not None]
    ok_pushed = Counter(_value_key(op.value) for op in pushes if op.status == "ok")
    maybe_pushed = Counter(_value_key(op.value) for op in pushes if op.status != "ok")
    popped = Counter(_value_key(op.result) for op in pops)
    violations: List[str] = []
    for val in sorted(popped):
        allowed = ok_pushed.get(val, 0) + maybe_pushed.get(val, 0)
        if allowed == 0:
            violations.append(f"value {val} popped but never pushed (phantom)")
        elif popped[val] > allowed:
            violations.append(
                f"value {val} popped {popped[val]} times "
                f"(pushed at most {allowed}: duplicate delivery)"
            )
    if drained:
        for val in sorted(ok_pushed):
            if popped.get(val, 0) == 0:
                violations.append(f"value {val} acknowledged but never popped (lost)")
    return CheckResult("queue-delivery", violations, len(pushes) + len(pops))


# ----------------------------------------------------------------------
# Metalog: monotonicity + replica/seal consistency
# ----------------------------------------------------------------------
def check_metalog(cluster) -> CheckResult:
    """Invariants over every sequencer's metalog replicas.

    Per replica: contiguous entry indices, monotonically non-decreasing
    progress vectors, and correct ``start_pos`` accounting (each entry's
    start position equals the number of records ordered by all earlier
    entries). Across replicas of the same (term, log): prefix consistency
    — two replicas never disagree on an entry they both store, which is
    what quorum replication plus seal (§4.5) must preserve across
    reconfigurations.
    """
    by_key: Dict[Tuple[int, int], List[Tuple[str, Any]]] = {}
    for qnode in cluster.sequencer_nodes:
        for key, replica in qnode.replicas.items():
            by_key.setdefault(key, []).append((qnode.name, replica))
    violations: List[str] = []
    checked = 0
    for key in sorted(by_key):
        term, log_id = key
        replicas = sorted(by_key[key], key=lambda nr: nr[0])
        for name, replica in replicas:
            entries = replica.entries_from(0)
            checked += len(entries)
            prev_progress: Dict[str, int] = {}
            running_total = 0
            for i, entry in enumerate(entries):
                if entry.index != i:
                    violations.append(
                        f"{name} ({term},{log_id}): entry {i} has index {entry.index}"
                    )
                    break
                progress = entry.progress_dict()
                for shard in sorted(progress):
                    if progress[shard] < prev_progress.get(shard, 0):
                        violations.append(
                            f"{name} ({term},{log_id}) entry {i}: progress for "
                            f"shard {shard} regressed "
                            f"{prev_progress.get(shard, 0)} -> {progress[shard]}"
                        )
                if entry.start_pos != running_total:
                    violations.append(
                        f"{name} ({term},{log_id}) entry {i}: start_pos "
                        f"{entry.start_pos} != records ordered so far {running_total}"
                    )
                running_total += sum(
                    progress.get(s, 0) - prev_progress.get(s, 0)
                    for s in progress
                )
                prev_progress = progress
        # Cross-replica prefix consistency.
        for i in range(len(replicas) - 1):
            name_a, rep_a = replicas[i]
            for name_b, rep_b in replicas[i + 1:]:
                entries_a = rep_a.entries_from(0)
                entries_b = rep_b.entries_from(0)
                for idx in range(min(len(entries_a), len(entries_b))):
                    ea, eb = entries_a[idx], entries_b[idx]
                    if (ea.progress, ea.start_pos, ea.trims) != (
                        eb.progress, eb.start_pos, eb.trims
                    ):
                        violations.append(
                            f"({term},{log_id}) entry {idx}: replicas {name_a} "
                            f"and {name_b} diverge"
                        )
                        break
    return CheckResult("metalog-consistency", violations, checked)
