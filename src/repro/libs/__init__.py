"""Boki support libraries (§5).

Three libraries built on the LogBook API, demonstrating shared logs for
stateful serverless:

- :mod:`repro.libs.bokiflow` — fault-tolerant workflows with exactly-once
  semantics and transactions (Beldi's techniques on LogBooks, §5.1);
- :mod:`repro.libs.bokistore` — durable JSON object storage with
  transactions (Tango's techniques, §5.2) and aux-data accelerated log
  replay (§5.4);
- :mod:`repro.libs.bokiqueue` — serverless message queues using vCorfu's
  composable state machine replication (§5.3);
- :mod:`repro.libs.gc` — garbage-collector functions trimming dead log
  records for all three libraries (§5.5).
"""
