"""Tests for placement building and the controller's failure paths."""

import pytest

from repro.core import BokiCluster, BokiConfig
from repro.core.controller import ReconfigurationFailed
from repro.core.placement import build_term


class TestPlacement:
    def setup_method(self):
        self.config = BokiConfig(ndata=3, nmeta=3)
        self.engines = [f"e{i}" for i in range(8)]
        self.storage = [f"s{i}" for i in range(6)]
        self.sequencers = [f"q{i}" for i in range(3)]

    def build(self, **kwargs):
        return build_term(
            self.config, 1, self.engines, self.storage, self.sequencers, **kwargs
        )

    def test_every_engine_owns_a_shard(self):
        term = self.build()
        for asg in term.logs.values():
            assert set(asg.shards) == set(self.engines)

    def test_every_shard_has_ndata_backers(self):
        term = self.build(num_logs=2)
        for asg in term.logs.values():
            for shard, backers in asg.shard_storage.items():
                assert len(backers) == 3
                assert len(set(backers)) == 3

    def test_sequencer_count_and_primary(self):
        term = self.build()
        asg = term.assignment(0)
        assert len(asg.sequencers) == 3
        assert asg.primary in asg.sequencers

    def test_index_engines_default_four(self):
        term = self.build()
        assert len(term.assignment(0).index_engines) == 4

    def test_index_engines_override(self):
        term = self.build(index_engines_per_log=2)
        assert len(term.assignment(0).index_engines) == 2

    def test_subscribers_cover_everything(self):
        term = self.build()
        asg = term.assignment(0)
        subs = set(asg.subscribers())
        assert set(asg.shards) <= subs
        assert set(asg.index_engines) <= subs
        assert set(asg.storage_nodes()) <= subs

    def test_primary_override(self):
        term = build_term(
            self.config, 1, self.engines, self.storage, self.sequencers,
            primary_overrides={0: "q2"},
        )
        assert term.assignment(0).primary == "q2"

    def test_deterministic(self):
        a = self.build(num_logs=2)
        b = self.build(num_logs=2)
        assert a.logs[1].shard_storage == b.logs[1].shard_storage

    def test_books_map_to_valid_logs(self):
        term = self.build(num_logs=4)
        for book in range(100):
            assert term.log_for_book(book) in term.logs

    def test_insufficient_resources_rejected(self):
        with pytest.raises(ValueError):
            build_term(self.config, 1, [], self.storage, self.sequencers)
        with pytest.raises(ValueError):
            build_term(self.config, 1, self.engines, ["s0"], self.sequencers)
        with pytest.raises(ValueError):
            build_term(self.config, 1, self.engines, self.storage, ["q0"])
        with pytest.raises(ValueError):
            build_term(
                self.config, 1, self.engines, self.storage, self.sequencers, num_logs=0
            )


class TestControllerFailures:
    def test_seal_fails_without_quorum(self):
        """If a quorum of sequencers is unreachable, sealing must fail
        loudly rather than silently losing the term."""
        c = BokiCluster(num_sequencer_nodes=3)
        c.boot()
        for seq in c.sequencer_nodes[:2]:
            seq.node.crash()

        def flow():
            yield from c.controller.reconfigure()

        with pytest.raises(ReconfigurationFailed):
            c.drive(flow(), limit=60.0)

    def test_seal_succeeds_with_one_dead_secondary(self):
        c = BokiCluster(num_sequencer_nodes=4)
        c.boot()
        asg = c.term.assignment(0)
        secondary = next(s for s in asg.sequencers if s != asg.primary)
        c.controller.components[secondary].node.crash()

        def flow():
            term = yield from c.controller.reconfigure()
            return term.term_id

        assert c.drive(flow(), limit=60.0) == 2

    def test_consecutive_reconfigurations(self):
        c = BokiCluster(num_sequencer_nodes=3)
        c.boot()

        def flow():
            book = c.logbook(1)
            for round_ in range(3):
                yield from book.append(f"round-{round_}")
                yield from c.controller.reconfigure()
            records = yield from book.iter_records()
            return c.controller.current_term.term_id, [r.data for r in records]

        term_id, data = c.drive(flow(), limit=120.0)
        assert term_id == 4
        assert data == ["round-0", "round-1", "round-2"]

    def test_reconfigure_changes_log_count(self):
        c = BokiCluster(num_storage_nodes=8, num_logs=1)
        c.boot()

        def flow():
            book = c.logbook(5)
            yield from book.append("before")
            yield from c.controller.reconfigure(num_logs=4)
            yield from book.append("after")
            records = yield from book.iter_records()
            return len(c.controller.current_term.logs), [r.data for r in records]

        num_logs, data = c.drive(flow(), limit=120.0)
        assert num_logs == 4
        assert data == ["before", "after"]

    def test_failure_detector_ignores_unused_node_death(self):
        """A spare (unassigned) node dying must not trigger reconfiguration."""
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()
        # seq-3..5 are spares (nmeta=3).
        spare = c.controller.components["seq-5"]
        spare.node.crash()

        def flow():
            yield c.env.timeout(6.0)

        c.drive(flow(), limit=120.0)
        assert c.controller.reconfig_count == 0
