"""Tests for the Beldi / unsafe workflow baselines and fixed sharding."""

import pytest

from repro.baselines.beldi import BeldiRuntime, BeldiTxn
from repro.baselines.dynamodb import DynamoDBService
from repro.baselines.fixed_sharding import fixed_sharding_logbook
from repro.baselines.unsafe import UnsafeRuntime
from repro.core import BokiCluster


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=4, index_engines_per_log=4)
    DynamoDBService(c.env, c.net, c.streams)
    c.boot()
    return c


def drive(cluster, gen, limit=600.0):
    return cluster.drive(gen, limit=limit)


class TestBeldi:
    def test_write_read_roundtrip(self, cluster):
        rt = BeldiRuntime(cluster)

        def body(env, arg):
            yield from env.write("t", "k", "v")
            return (yield from env.read("t", "k"))

        rt.register_workflow("wf", body)

        def flow():
            return (yield from rt.start_workflow("wf"))

        assert drive(cluster, flow()) == "v"

    def test_exactly_once_on_reexecution(self, cluster):
        rt = BeldiRuntime(cluster)
        crashes = {"armed": True}

        class Crash(Exception):
            pass

        def body(env, arg):
            current = (yield from env.read("t", "ctr")) or 0
            yield from env.write("t", "ctr", current + 1)
            if crashes["armed"]:
                crashes["armed"] = False
                raise Crash()
            return (yield from env.read("t", "ctr"))

        rt.register_workflow("wf", body)

        def flow():
            wf_id = rt.new_workflow_id()
            try:
                yield from rt.start_workflow("wf", workflow_id=wf_id)
            except Crash:
                pass
            return (yield from rt.start_workflow("wf", workflow_id=wf_id))

        assert drive(cluster, flow()) == 1

    def test_completed_workflow_replays_result(self, cluster):
        rt = BeldiRuntime(cluster)
        runs = {"n": 0}

        def body(env, arg):
            runs["n"] += 1
            yield from env.write("t", "k", runs["n"])
            return runs["n"]

        rt.register_workflow("wf", body)

        def flow():
            wf_id = rt.new_workflow_id()
            a = yield from rt.start_workflow("wf", workflow_id=wf_id)
            b = yield from rt.start_workflow("wf", workflow_id=wf_id)
            return a, b

        assert drive(cluster, flow()) == (1, 1)
        assert runs["n"] == 1

    def test_invoke_child(self, cluster):
        rt = BeldiRuntime(cluster)

        def child(env, arg):
            yield from env.write("t", "c", arg)
            return arg * 2

        def parent(env, arg):
            return (yield from env.invoke("child", 10))

        rt.register_workflow("child", child)
        rt.register_workflow("parent", parent)

        def flow():
            return (yield from rt.start_workflow("parent"))

        assert drive(cluster, flow()) == 20

    def test_locks_mutual_exclusion(self, cluster):
        rt = BeldiRuntime(cluster)
        order = []

        def body(env, arg):
            txn = BeldiTxn(env)
            ok = yield from txn.acquire([("t", "res")])
            if not ok:
                return "blocked"
            order.append(arg)
            txn.write("t", "res", arg)
            yield from txn.commit()
            return "done"

        rt.register_workflow("wf", body)

        def flow():
            a = yield from rt.start_workflow("wf", "first")
            b = yield from rt.start_workflow("wf", "second")
            return a, b

        assert drive(cluster, flow()) == ("done", "done")

    def test_beldi_slower_than_bokiflow(self, cluster):
        """The structural claim behind Figure 11c: the same workflow costs
        more wall-clock on Beldi (DynamoDB round trips per log append)."""
        from repro.libs.bokiflow import BokiFlowRuntime

        beldi, boki = BeldiRuntime(cluster), BokiFlowRuntime(cluster)

        def body(env, arg):
            for i in range(3):
                yield from env.write("t", f"k{i}", i)
            return "ok"

        beldi.register_workflow("wf-beldi", body)
        boki.register_workflow("wf-boki", body)

        def timed(name):
            start = cluster.env.now
            yield from (beldi if "beldi" in name else boki).start_workflow(name, book_id=2)
            return cluster.env.now - start

        beldi_time = drive(cluster, timed("wf-beldi"))
        boki_time = drive(cluster, timed("wf-boki"))
        assert beldi_time > boki_time


class TestUnsafe:
    def test_write_read(self, cluster):
        rt = UnsafeRuntime(cluster)

        def body(env, arg):
            yield from env.write("t", "k", "v")
            return (yield from env.read("t", "k"))

        rt.register_workflow("wf", body)

        def flow():
            return (yield from rt.start_workflow("wf"))

        assert drive(cluster, flow()) == "v"

    def test_reexecution_duplicates_effects(self, cluster):
        """The unsafe baseline demonstrates the problem: re-execution
        double-applies (no exactly-once)."""
        rt = UnsafeRuntime(cluster)

        def body(env, arg):
            current = (yield from env.read("t", "ctr")) or 0
            yield from env.write("t", "ctr", current + 1)
            return current + 1

        rt.register_workflow("wf", body)

        def flow():
            wf_id = rt.new_workflow_id()
            yield from rt.start_workflow("wf", workflow_id=wf_id)
            return (yield from rt.start_workflow("wf", workflow_id=wf_id))

        assert drive(cluster, flow()) == 2  # duplicated, unlike Beldi/BokiFlow

    def test_faster_than_bokiflow(self, cluster):
        from repro.libs.bokiflow import BokiFlowRuntime

        unsafe, boki = UnsafeRuntime(cluster), BokiFlowRuntime(cluster)

        def body(env, arg):
            yield from env.write("t", "k", 1)
            return "ok"

        unsafe.register_workflow("wf-unsafe", body)
        boki.register_workflow("wf-boki2", body)

        def timed(rt, name):
            start = cluster.env.now
            yield from rt.start_workflow(name, book_id=3)
            return cluster.env.now - start

        unsafe_time = drive(cluster, timed(unsafe, "wf-unsafe"))
        boki_time = drive(cluster, timed(boki, "wf-boki2"))
        assert unsafe_time < boki_time


class TestFixedSharding:
    def test_roundtrip(self, cluster):
        def flow():
            book = fixed_sharding_logbook(cluster, 42)
            s = yield from book.append("data", tags=[5])
            record = yield from book.read_next(tag=5, min_seqnum=0)
            return record.data

        assert drive(cluster, flow()) == "data"

    def test_all_appends_from_any_engine_land_on_home_shard(self, cluster):
        def flow():
            seqnums = []
            for engine_name in list(cluster.engines):
                book = fixed_sharding_logbook(
                    cluster, 42, engine=cluster.engine_of(engine_name)
                )
                seqnums.append((yield from book.append(f"from-{engine_name}")))
            return seqnums

        drive(cluster, flow())
        # All records of book 42 carry the home engine's shard.
        home = fixed_sharding_logbook(cluster, 42).home_engine
        index_engine = next(e for e in cluster.engines.values() if e.indexes(0))
        index = index_engine.indices[0]
        shards = {index.shard_of(s) for s in index.range(42, 0)}
        assert shards == {home}

    def test_different_books_different_homes(self, cluster):
        homes = {
            fixed_sharding_logbook(cluster, b).home_engine for b in range(50)
        }
        assert len(homes) == len(cluster.engines)
