"""Tests for the application workloads: movie, travel, Retwis, queueing,
primitives."""

import pytest

from repro.baselines.beldi import BeldiRuntime
from repro.baselines.dynamodb import DynamoDBService
from repro.baselines.mongodb import MongoDBClient, MongoDBService
from repro.baselines.unsafe import UnsafeRuntime
from repro.core import BokiCluster
from repro.libs.bokiflow import BokiFlowRuntime
from repro.libs.bokistore import BokiStore
from repro.workloads.movie import TABLE_MOVIE_REVIEWS, compose_review_request, register_movie_workflows
from repro.workloads.primitives import measure_primitives, register_primitive_workflows
from repro.workloads.queueing import BokiQueueBackend, SQSBackend, run_queue_workload
from repro.workloads.retwis import RetwisBokiStore, RetwisMongo, retwis_op
from repro.workloads.travel import TABLE_FLIGHTS, TABLE_HOTELS, register_travel_workflows, reserve_request


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=4, index_engines_per_log=4)
    DynamoDBService(c.env, c.net, c.streams)
    c.boot()
    return c


ALL_RUNTIMES = [BokiFlowRuntime, BeldiRuntime, UnsafeRuntime]


class TestMovieWorkflow:
    @pytest.mark.parametrize("runtime_class", ALL_RUNTIMES)
    def test_compose_review_end_to_end(self, cluster, runtime_class):
        runtime = runtime_class(cluster)
        frontend = register_movie_workflows(runtime, prefix=f"m-{runtime_class.__name__}")
        rng = cluster.streams.stream("movie-test")

        def flow():
            request = compose_review_request(rng, 0)
            review_id = yield from runtime.start_workflow(frontend, request, book_id=1)
            env_probe = runtime  # the review must be registered with the movie
            from repro.baselines.dynamodb import DynamoDBClient

            db = DynamoDBClient(cluster.net, cluster.client_node)
            reviews = yield from db.get(TABLE_MOVIE_REVIEWS, request["movie"])
            return review_id, reviews["Value"]

        review_id, reviews = cluster.drive(flow(), limit=600.0)
        assert review_id in reviews

    def test_movie_reviews_accumulate(self, cluster):
        runtime = BokiFlowRuntime(cluster)
        frontend = register_movie_workflows(runtime, prefix="m-acc")

        def flow():
            request = {"user": "u", "movie": "m", "text": "t", "rating": 5}
            r1 = yield from runtime.start_workflow(frontend, dict(request), book_id=1)
            r2 = yield from runtime.start_workflow(frontend, dict(request), book_id=1)
            from repro.baselines.dynamodb import DynamoDBClient

            db = DynamoDBClient(cluster.net, cluster.client_node)
            reviews = yield from db.get(TABLE_MOVIE_REVIEWS, "m")
            return r1, r2, reviews["Value"]

        r1, r2, reviews = cluster.drive(flow(), limit=600.0)
        assert r1 != r2
        assert set(reviews) == {r1, r2}


class TestTravelWorkflow:
    @pytest.mark.parametrize("runtime_class", ALL_RUNTIMES)
    def test_reservation_decrements_capacity(self, cluster, runtime_class):
        runtime = runtime_class(cluster)
        frontend = register_travel_workflows(runtime, prefix=f"t-{runtime_class.__name__}")

        def flow():
            from repro.baselines.dynamodb import DynamoDBClient

            db = DynamoDBClient(cluster.net, cluster.client_node)
            yield from db.update(TABLE_FLIGHTS, "f1", set_attrs={"Value": 5})
            yield from db.update(TABLE_HOTELS, "h1", set_attrs={"Value": 5})
            result = yield from runtime.start_workflow(
                frontend, {"user": "u", "flight": "f1", "hotel": "h1"}, book_id=1
            )
            seats = yield from db.get(TABLE_FLIGHTS, "f1")
            rooms = yield from db.get(TABLE_HOTELS, "h1")
            return result["status"], seats["Value"], rooms["Value"]

        status, seats, rooms = cluster.drive(flow(), limit=600.0)
        assert status == "confirmed"
        assert (seats, rooms) == (4, 4)

    def test_sold_out(self, cluster):
        runtime = BokiFlowRuntime(cluster)
        frontend = register_travel_workflows(runtime, prefix="t-so")

        def flow():
            from repro.baselines.dynamodb import DynamoDBClient

            db = DynamoDBClient(cluster.net, cluster.client_node)
            yield from db.update(TABLE_FLIGHTS, "f1", set_attrs={"Value": 0})
            yield from db.update(TABLE_HOTELS, "h1", set_attrs={"Value": 5})
            result = yield from runtime.start_workflow(
                frontend, {"user": "u", "flight": "f1", "hotel": "h1"}, book_id=1
            )
            rooms = yield from db.get(TABLE_HOTELS, "h1")
            return result["status"], rooms["Value"]

        status, rooms = cluster.drive(flow(), limit=600.0)
        assert status == "sold-out"
        assert rooms == 5  # hotel capacity untouched (atomicity)


class TestRetwis:
    def test_bokistore_backend_end_to_end(self, cluster):
        backend = RetwisBokiStore(BokiStore(cluster.logbook(30)), num_users=10)

        def flow():
            yield from backend.init_users()
            login = yield from backend.user_login(3)
            yield from backend.new_tweet(3, "hello world")
            own_timeline = yield from backend.get_timeline(3)
            follower_timeline = yield from backend.get_timeline(4)
            return login, own_timeline, follower_timeline

        login, own, follower = cluster.drive(flow(), limit=600.0)
        assert login is True
        assert own == ["hello world"]
        assert follower == ["hello world"]  # user 4 follows user 3

    def test_mongo_backend_end_to_end(self, cluster):
        MongoDBService(cluster.env, cluster.net, cluster.streams)
        backend = RetwisMongo(MongoDBClient(cluster.net, cluster.client_node), num_users=10)

        def flow():
            yield from backend.init_users()
            login = yield from backend.user_login(3)
            yield from backend.new_tweet(3, "hello mongo")
            own = yield from backend.get_timeline(3)
            return login, own

        login, own = cluster.drive(flow(), limit=600.0)
        assert login is True
        assert own == ["hello mongo"]

    def test_mixture_sampler(self, cluster):
        backend = RetwisBokiStore(BokiStore(cluster.logbook(31)), num_users=10)
        rng = cluster.streams.stream("retwis-mix")
        kinds = [retwis_op(backend, rng, i)[0] for i in range(2000)]
        from collections import Counter

        counts = Counter(kinds)
        assert 0.40 < counts["timeline"] / 2000 < 0.60
        assert 0.02 < counts["tweet"] / 2000 < 0.10

    def test_profiles_reflect_tweets(self, cluster):
        backend = RetwisBokiStore(BokiStore(cluster.logbook(32)), num_users=5)

        def flow():
            yield from backend.init_users()
            yield from backend.new_tweet(1, "a")
            yield from backend.new_tweet(1, "b")
            profile = yield from backend.user_profile(1)
            return profile

        profile = cluster.drive(flow(), limit=600.0)
        assert profile["tweets"] == 2


class TestQueueWorkload:
    def test_bokiqueue_backend_delivers(self, cluster):
        backend = BokiQueueBackend(cluster, num_shards=2)
        throughput, delivery = run_queue_workload(
            cluster.env, backend, num_producers=2, num_consumers=2, duration=0.3
        )
        assert throughput > 10
        assert delivery.count > 0
        assert delivery.median() > 0

    def test_sqs_backend_delivers(self, cluster):
        from repro.baselines.sqs import SQSService

        SQSService(cluster.env, cluster.net, cluster.streams)
        backend = SQSBackend(cluster)
        throughput, delivery = run_queue_workload(
            cluster.env, backend, num_producers=2, num_consumers=2, duration=0.3
        )
        assert throughput > 10

    def test_producer_heavy_builds_delay(self, cluster):
        """4:1 P:C saturates the consumer: delivery latency >> balanced."""
        from repro.baselines.sqs import SQSService

        SQSService(cluster.env, cluster.net, cluster.streams)
        backend = SQSBackend(cluster, queue_name="heavy")
        _, heavy = run_queue_workload(
            cluster.env, backend, num_producers=8, num_consumers=2, duration=0.3
        )
        backend2 = SQSBackend(cluster, queue_name="balanced")
        _, balanced = run_queue_workload(
            cluster.env, backend2, num_producers=2, num_consumers=2, duration=0.3
        )
        assert heavy.median() > 2 * balanced.median()


class TestPrimitives:
    def test_bokiflow_primitives_measured(self, cluster):
        runtime = BokiFlowRuntime(cluster)
        register_primitive_workflows(runtime)
        recorders = measure_primitives(runtime, ops_per_workflow=5, workflows=2)
        assert set(recorders) == {"read", "write", "condwrite", "invoke"}
        assert all(r.count == 10 for r in recorders.values())

    def test_beldi_invoke_slower_than_bokiflow(self, cluster):
        boki = BokiFlowRuntime(cluster)
        beldi = BeldiRuntime(cluster)
        register_primitive_workflows(boki)
        register_primitive_workflows(beldi)
        boki_lat = measure_primitives(boki, ops_per_workflow=5, workflows=2)
        beldi_lat = measure_primitives(beldi, ops_per_workflow=5, workflows=2)
        # The Figure 11c headline: Beldi's Invoke pays DynamoDB round
        # trips per log append.
        assert beldi_lat["invoke"].median() > 2 * boki_lat["invoke"].median()
