"""Cross-tenant isolation: same raw book ids and tags, disjoint data.

Every test writes writer-stamped records (``{"tenant": ...}`` in the
payload) from two or more tenants into the *same* raw book id and tag,
then asserts that no read — direct LogBook handles, gateway function
invocations, or range scans after fault injection — ever surfaces a
record stamped by another tenant. The log-space prefix is the only
mechanism; there is no per-read filtering to hide a leak.
"""

import pytest

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.core.cluster import BokiCluster
from repro.core.index import scope_book
from repro.tenant import UnknownTenantError

pytestmark = pytest.mark.tenant

BOOK = 5
TAG = 7


def _cluster(*tenants, **kwargs):
    kwargs.setdefault("num_function_nodes", 2)
    kwargs.setdefault("num_storage_nodes", 3)
    kwargs.setdefault("num_sequencer_nodes", 3)
    cluster = BokiCluster(**kwargs)
    hub = cluster.enable_tenancy()
    for t in tenants:
        hub.registry.register(t)
    return cluster, hub


# ----------------------------------------------------------------------
# Direct LogBook handles
# ----------------------------------------------------------------------
def test_same_raw_book_and_tag_are_disjoint():
    cluster, _ = _cluster("acme", "bigco")
    cluster.boot()

    def run():
        books = {t: cluster.logbook(BOOK, tenant=t) for t in ("acme", "bigco")}
        for t, book in books.items():
            for n in range(4):
                yield from book.append({"tenant": t, "n": n}, tags=(TAG,))
        out = {}
        for t, book in books.items():
            out[t] = yield from book.read_range(TAG)
        return out

    out = cluster.drive(run())
    for t, records in out.items():
        assert len(records) == 4
        assert [r.data["n"] for r in records] == [0, 1, 2, 3]
        # Writer stamps prove no cross-tenant record leaked in.
        assert {r.data["tenant"] for r in records} == {t}
        # Tags round-trip raw: the scope prefix never reaches the app.
        assert all(r.tags == (TAG,) for r in records)


def test_default_tenant_and_registered_tenant_are_mutually_invisible():
    cluster, _ = _cluster("acme")
    cluster.boot()

    def run():
        plain = cluster.logbook(BOOK)                  # default tenant
        scoped = cluster.logbook(BOOK, tenant="acme")
        yield from plain.append({"tenant": "default"}, tags=(TAG,))
        yield from scoped.append({"tenant": "acme"}, tags=(TAG,))
        seen_plain = yield from plain.read_range(TAG)
        seen_scoped = yield from scoped.read_range(TAG)
        tail_plain = yield from plain.read_prev()      # ALL_TAG row
        tail_scoped = yield from scoped.read_prev()
        return seen_plain, seen_scoped, tail_plain, tail_scoped

    seen_plain, seen_scoped, tail_plain, tail_scoped = cluster.drive(run())
    assert [r.data["tenant"] for r in seen_plain] == ["default"]
    assert [r.data["tenant"] for r in seen_scoped] == ["acme"]
    # Even the implicit all-records row is private: book ids differ.
    assert tail_plain.data["tenant"] == "default"
    assert tail_scoped.data["tenant"] == "acme"


def test_scoped_book_ids_diverge_in_the_index():
    cluster, hub = _cluster("acme")
    assert hub.registry.scope_book("acme", BOOK) == scope_book(1, BOOK)
    assert hub.registry.scope_book("acme", BOOK) != BOOK
    with pytest.raises(UnknownTenantError):
        cluster.logbook(BOOK, tenant="ghost")


# ----------------------------------------------------------------------
# Through the gateway
# ----------------------------------------------------------------------
def _register_session_fns(cluster):
    def write(ctx, arg):
        book = cluster.logbook_for(ctx)
        seq = yield from book.append(
            {"tenant": ctx.tenant, "n": arg["n"]}, tags=(TAG,))
        return seq

    def scan(ctx, arg):
        book = cluster.logbook_for(ctx)
        records = yield from book.read_range(TAG)
        mine = sum(1 for r in records if r.data.get("tenant") == ctx.tenant)
        return {"total": len(records), "mine": mine,
                "leaks": len(records) - mine}

    cluster.register_function("session-write", write)
    cluster.register_function("session-scan", scan)


def test_isolation_through_gateway_functions():
    cluster, _ = _cluster("acme", "bigco")
    cluster.boot()
    _register_session_fns(cluster)

    def run():
        for t in ("acme", "bigco"):
            for n in range(3):
                yield from cluster.invoke(
                    "session-write", {"n": n}, book_id=BOOK, tenant=t)
        out = {}
        for t in ("acme", "bigco", None):
            out[t] = yield from cluster.invoke(
                "session-scan", {}, book_id=BOOK, tenant=t)
        return out

    out = cluster.drive(run())
    for t in ("acme", "bigco"):
        assert out[t] == {"total": 3, "mine": 3, "leaks": 0}
    # Unlabelled (default-tenant) scans see an empty book entirely.
    assert out[None] == {"total": 0, "mine": 0, "leaks": 0}


# ----------------------------------------------------------------------
# Under chaos
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_isolation_survives_storage_crash_and_partition():
    """Crash/restart one storage node and partition another from an
    engine mid-run: replication retries, failover reads, and restarted
    replicas must never blur log-space boundaries."""
    cluster, hub = _cluster("acme", "bigco", seed=11)
    cluster.enable_resilience()
    cluster.boot()
    _register_session_fns(cluster)

    snode = cluster.storage_nodes[0]
    snode.node.restart_hooks.append(
        lambda n, s=snode: s.configure(s.term_config))
    other = cluster.storage_nodes[1].name
    plan = (
        FaultPlan()
        .crash(0.3, snode.name)
        .restart(0.8, snode.name)
        .partition(0.4, other, "func-0")
        .heal(1.0, other, "func-0")
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    injector.start()

    env = cluster.env
    rng = cluster.streams.stream("tenant-chaos")
    written = {"acme": 0, "bigco": 0}

    def writer(tenant):
        for n in range(30):
            try:
                yield from cluster.invoke(
                    "session-write", {"n": n}, book_id=BOOK, tenant=tenant)
                written[tenant] += 1
            except Exception:
                pass  # shed/failed mid-fault; the writer moves on
            yield env.timeout(0.03 + rng.random() * 0.02)

    procs = [env.process(writer(t), name=f"writer-{t}")
             for t in ("acme", "bigco")]
    env.run_until(env.all_of(procs), limit=300.0)
    assert env.now > 1.0, "workload finished before the faults healed"
    assert snode.node.crash_count == 1

    def audit():
        out = {}
        for t in ("acme", "bigco"):
            records = yield from cluster.logbook(BOOK, tenant=t).read_range(TAG)
            out[t] = records
        return out

    out = cluster.drive(audit())
    for t, records in out.items():
        stamps = {r.data["tenant"] for r in records}
        assert stamps <= {t}, f"cross-tenant leak into {t}: {stamps}"
        # At-least-once retries may duplicate, never lose: every ack'd
        # write is present.
        assert len(records) >= written[t] > 0
        assert all(r.tags == (TAG,) for r in records)
